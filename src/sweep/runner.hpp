/// \file
/// bbsim::sweep -- parallel execution of independent simulation runs.
///
/// The paper's validation (Section IV-B, Figures 10-11) and case study
/// (Section IV-C, Figures 13-14) are parameter sweeps: dozens of mutually
/// independent simulations over (staged fraction x cores x pipelines x
/// platform). Each simulation owns a fully isolated sim/flow/exec/stats
/// stack -- no module in the library keeps mutable global state -- so the
/// sweeps are embarrassingly parallel. SweepRunner exploits that with a
/// plain thread pool.
///
/// Guarantees:
///   * deterministic results -- outcome i is always the outcome of spec i,
///     regardless of which worker finished first, and each run's simulated
///     quantities depend only on its spec (never on `jobs`);
///   * per-run failure capture -- an exception inside one run is recorded
///     in its outcome and does not poison sibling runs;
///   * optional cancel-on-first-error -- unstarted runs are skipped once a
///     failure is observed (in-flight runs complete normally);
///   * serialized progress callbacks -- invoked under a lock, in completion
///     order, from worker threads.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exec/trace.hpp"

namespace bbsim::sweep {

/// One independent unit of work: a label plus a closure that builds and
/// runs a complete simulation stack and returns its result. The closure
/// must not share mutable state with sibling specs (pass workflows and
/// platform specs by value or const reference; placement policies are
/// immutable and safe to share).
struct RunSpec {
  std::string name;
  std::function<exec::Result()> body;
};

/// What happened to one spec. Exactly one of {ok, error-non-empty,
/// skipped} holds for every outcome.
struct RunOutcome {
  std::string name;
  bool ok = false;
  bool skipped = false;     ///< cancelled before starting (cancel_on_error)
  std::string error;        ///< exception message when the run failed
  exec::Result result;      ///< valid only when ok
  double wall_seconds = 0.0;  ///< host wall time of this run (0 if skipped)
};

/// Snapshot passed to the progress callback after each run finishes.
struct Progress {
  std::size_t finished = 0;  ///< runs finished or skipped so far
  std::size_t total = 0;
  std::string name;  ///< the run that just finished
  bool ok = false;
};

struct SweepOptions {
  /// Worker threads. 1 = run inline on the calling thread (no pool);
  /// 0 = one per hardware thread.
  int jobs = 1;
  /// Stop launching new runs after the first failure. Runs that never
  /// started are marked `skipped`. Default off: report every failure.
  bool cancel_on_error = false;
  /// Invoked after every run (serialized; may be called from workers).
  std::function<void(const Progress&)> on_progress;
};

/// Resolve a --jobs value: 0 -> hardware_concurrency (min 1), else the
/// requested count. Throws util::ConfigError when negative.
int effective_jobs(int requested);

/// A thread pool for independent simulation runs. Stateless between
/// run() calls; cheap to construct.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Execute every spec and return outcomes in spec order.
  std::vector<RunOutcome> run(const std::vector<RunSpec>& specs) const;

  const SweepOptions& options() const { return options_; }

 private:
  SweepOptions options_;
};

}  // namespace bbsim::sweep
