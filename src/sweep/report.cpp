#include "sweep/report.hpp"

#include <limits>

#include "resil/fault.hpp"

namespace bbsim::sweep {

namespace {

/// A "tool": "batch" run carries a bbsim.batch.v1 report in its metrics;
/// lift its policy + fleet summary to the run level so campaign-scale
/// consumers need not dig through the embedded document.
void lift_batch_summary(const json::Value& metrics, json::Object& run) {
  if (!metrics.is_object()) return;
  if (metrics.get_string("schema", "") != "bbsim.batch.v1") return;
  const json::Value* runs = metrics.as_object().find("runs");
  if (runs == nullptr || !runs->is_array() || runs->as_array().empty()) return;
  const json::Value& first = runs->as_array().front();
  if (!first.is_object()) return;
  json::Object batch;
  if (const json::Value* policy = first.as_object().find("policy")) {
    batch.set("policy", *policy);
  }
  if (const json::Value* summary = first.as_object().find("summary")) {
    batch.set("summary", *summary);
  }
  run.set("batch", json::Value(std::move(batch)));
}

json::Value run_to_json(const RunOutcome& outcome, bool include_timings) {
  json::Object run;
  run.set("name", outcome.name);
  run.set("ok", outcome.ok);
  if (outcome.skipped) run.set("skipped", true);
  if (!outcome.error.empty()) run.set("error", outcome.error);
  if (outcome.ok) {
    const exec::Result& r = outcome.result;
    run.set("makespan", r.makespan);
    run.set("stage_in", r.stage_in_duration);
    run.set("workflow_span", r.workflow_span);
    run.set("stage_out", r.stage_out_duration);
    run.set("tasks", r.tasks.size());
    run.set("demoted_writes", r.demoted_writes);
    run.set("evicted_files", r.evicted_files);
    run.set("skipped_stage_files", r.skipped_stage_files);
    json::Array storage;
    for (const exec::StorageCounters& s : r.storage) {
      json::Object service;
      service.set("service", s.service);
      service.set("bytes_served", s.bytes_served);
      service.set("busy_time", s.busy_time);
      storage.push_back(json::Value(std::move(service)));
    }
    run.set("storage", json::Value(std::move(storage)));
    lift_batch_summary(r.metrics, run);
    if (r.resil_stats != nullptr) {
      // Lift the headline waste numbers so fault-rate axes can be compared
      // without digging through the embedded bbsim.resil.v1 document.
      json::Object resil;
      resil.set("node_crashes", static_cast<double>(r.resil_stats->node_crashes));
      resil.set("tasks_killed", static_cast<double>(r.resil_stats->tasks_killed));
      resil.set("rollbacks", static_cast<double>(r.resil_stats->rollbacks));
      resil.set("checkpoints_taken",
                static_cast<double>(r.resil_stats->checkpoints_taken));
      resil.set("wasted_core_seconds", r.resil_stats->wasted_core_seconds());
      run.set("resil", json::Value(std::move(resil)));
    }
    if (!r.critpath.is_null() && r.critpath.is_object()) {
      // Lift the headline attribution so a "critpath": true axis can be
      // compared across runs without digging into the embedded document.
      json::Object critpath;
      if (const json::Value* frac =
              r.critpath.as_object().find("blame_fractions")) {
        critpath.set("blame_fractions", *frac);
      }
      if (const json::Value* what_if = r.critpath.as_object().find("what_if")) {
        critpath.set("what_if", *what_if);
      }
      run.set("critpath", json::Value(std::move(critpath)));
    }
    if (!r.metrics.is_null()) run.set("metrics", r.metrics);
    if (!r.audit.is_null()) run.set("audit_violations", r.audit_violations);
  }
  if (include_timings) run.set("wall_seconds", outcome.wall_seconds);
  return json::Value(std::move(run));
}

}  // namespace

json::Value sweep_report(const std::string& sweep_name,
                         const std::vector<RunOutcome>& outcomes,
                         bool include_timings) {
  json::Object doc;
  doc.set("schema", "bbsim.sweep.v1");
  doc.set("name", sweep_name);

  json::Array runs;
  std::size_t ok = 0, failed = 0, skipped = 0;
  std::size_t audited = 0, audit_violations = 0;
  double min_ms = std::numeric_limits<double>::infinity();
  double max_ms = -std::numeric_limits<double>::infinity();
  double sum_ms = 0.0;
  for (const RunOutcome& outcome : outcomes) {
    runs.push_back(run_to_json(outcome, include_timings));
    if (outcome.ok) {
      ++ok;
      if (!outcome.result.audit.is_null()) {
        ++audited;
        audit_violations += outcome.result.audit_violations;
      }
      const double m = outcome.result.makespan;
      if (m < min_ms) min_ms = m;
      if (m > max_ms) max_ms = m;
      sum_ms += m;
    } else if (outcome.skipped) {
      ++skipped;
    } else {
      ++failed;
    }
  }
  doc.set("runs", json::Value(std::move(runs)));

  json::Object summary;
  summary.set("total", outcomes.size());
  summary.set("ok", ok);
  summary.set("failed", failed);
  summary.set("skipped", skipped);
  if (ok > 0) {
    json::Object makespan;
    makespan.set("min", min_ms);
    makespan.set("mean", sum_ms / static_cast<double>(ok));
    makespan.set("max", max_ms);
    summary.set("makespan", json::Value(std::move(makespan)));
  }
  if (audited > 0) {
    json::Object audit;
    audit.set("runs_audited", audited);
    audit.set("violations", audit_violations);
    summary.set("audit", json::Value(std::move(audit)));
  }
  doc.set("summary", json::Value(std::move(summary)));
  return json::Value(std::move(doc));
}

}  // namespace bbsim::sweep
