#include "sweep/spec.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::sweep {

using util::ConfigError;
using util::ParseError;

std::string settings_value_to_string(const json::Value& value) {
  switch (value.type()) {
    case json::Type::String: return value.as_string();
    case json::Type::Bool: return value.as_bool() ? "1" : "0";
    case json::Type::Number: {
      const double n = value.as_number();
      if (std::nearbyint(n) == n && std::abs(n) < 1e15) {
        return util::format("%lld", static_cast<long long>(n));
      }
      return util::format("%g", n);
    }
    default:
      throw ConfigError("sweep settings must be strings, numbers or booleans, got " +
                        value.dump());
  }
}

SweepSpec parse_sweep_spec(const json::Value& doc) {
  if (!doc.is_object()) throw ParseError("sweep spec: top level must be an object");
  SweepSpec spec;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") {
      spec.name = value.as_string();
    } else if (key == "base") {
      if (!value.is_object()) throw ParseError("sweep spec: 'base' must be an object");
      spec.base = value.as_object();
    } else if (key == "axes") {
      if (!value.is_object()) throw ParseError("sweep spec: 'axes' must be an object");
      for (const auto& [axis_key, axis_values] : value.as_object()) {
        if (!axis_values.is_array() || axis_values.as_array().empty()) {
          throw ParseError("sweep spec: axis '" + axis_key +
                           "' must be a non-empty array");
        }
        spec.axes.push_back(Axis{axis_key, axis_values.as_array()});
      }
    } else if (key == "repetitions") {
      spec.repetitions = static_cast<int>(value.as_int());
      if (spec.repetitions < 1) {
        throw ConfigError("sweep spec: repetitions must be >= 1");
      }
    } else {
      throw ParseError("sweep spec: unknown key '" + key +
                       "' (expected name/base/axes/repetitions)");
    }
  }
  // An empty name is allowed; bbsim_sweep falls back to the spec filename.
  for (const Axis& axis : spec.axes) {
    if (spec.base.contains(axis.key)) {
      throw ConfigError("sweep spec: '" + axis.key + "' is both a base setting and an axis");
    }
  }
  return spec;
}

SweepSpec load_sweep_spec(const std::string& path) {
  return parse_sweep_spec(json::parse_file(path));
}

std::vector<ExpandedRun> expand(const SweepSpec& spec) {
  std::size_t points = 1;
  for (const Axis& axis : spec.axes) points *= axis.values.size();

  std::vector<ExpandedRun> runs;
  runs.reserve(points * static_cast<std::size_t>(spec.repetitions));
  for (std::size_t p = 0; p < points; ++p) {
    // Decode the point index into one value index per axis, last axis
    // varying fastest (row-major over the declaration order).
    std::vector<std::size_t> choice(spec.axes.size(), 0);
    std::size_t rest = p;
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      choice[a] = rest % spec.axes[a].values.size();
      rest /= spec.axes[a].values.size();
    }
    ExpandedRun point;
    point.settings = spec.base;
    std::string label;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const Axis& axis = spec.axes[a];
      const json::Value& value = axis.values[choice[a]];
      point.settings.set(axis.key, value);
      if (!label.empty()) label += ",";
      label += axis.key + "=" + settings_value_to_string(value);
    }
    if (label.empty()) label = "base";
    for (int rep = 0; rep < spec.repetitions; ++rep) {
      ExpandedRun run = point;
      run.repetition = rep;
      run.name = spec.repetitions > 1 ? label + "#rep" + std::to_string(rep) : label;
      runs.push_back(std::move(run));
    }
  }
  return runs;
}

}  // namespace bbsim::sweep
