#include "flow/network.hpp"

#include <algorithm>
#include <cmath>

namespace bbsim::flow {

using util::InvariantError;
using util::NotFoundError;

namespace {
/// Distinguish "NaN capacity" from "negative capacity" in error messages:
/// both are rejected, but naming the actual violation makes upstream bugs
/// (uninitialised spec fields, bad arithmetic) much easier to trace.
std::string capacity_violation(double capacity) {
  return std::isnan(capacity) ? "capacity is NaN"
                              : "negative capacity " + std::to_string(capacity);
}
}  // namespace

ResourceId Network::add_resource(std::string name, double capacity) {
  BBSIM_ASSERT(capacity >= 0 && !std::isnan(capacity),
               "resource '" + name + "': " + capacity_violation(capacity));
  resources_.push_back(Resource{std::move(name), capacity, 0.0, 0.0});
  members_.emplace_back();
  res_dirty_.push_back(0);
  return static_cast<ResourceId>(resources_.size() - 1);
}

const Resource& Network::resource(ResourceId id) const {
  if (id >= resources_.size()) throw NotFoundError("resource id " + std::to_string(id));
  return resources_[id];
}

Resource& Network::resource(ResourceId id) {
  if (id >= resources_.size()) throw NotFoundError("resource id " + std::to_string(id));
  return resources_[id];
}

void Network::set_capacity(ResourceId id, double capacity) {
  BBSIM_ASSERT(capacity >= 0 && !std::isnan(capacity),
               "set_capacity: " + capacity_violation(capacity));
  Resource& res = resource(id);
  // Change detection between two *assigned* (never computed) values: exact
  // comparison is the intent; no-op changes leave the dirt alone.
  if (res.capacity == capacity) return;  // NOLINT(bbsim-float-equality)
  res.capacity = capacity;
  mark_resource_dirty(id);
}

void Network::set_metrics(stats::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    solve_calls_ = nullptr;
    solve_rounds_ = nullptr;
    flows_resolved_ = nullptr;
    active_flows_ = nullptr;
    rounds_hist_ = nullptr;
    return;
  }
  solve_calls_ = &metrics->counter("flow.solve_calls");
  solve_rounds_ = &metrics->counter("flow.solve_rounds");
  flows_resolved_ = &metrics->counter("flow.solve_flows_resolved");
  active_flows_ = &metrics->gauge("flow.active_flows");
  rounds_hist_ = &metrics->histogram("flow.solve_rounds_per_call");
}

void Network::mark_resource_dirty(ResourceId r) {
  if (res_dirty_[r] != 0) return;
  res_dirty_[r] = 1;
  dirty_res_.push_back(r);
}

FlowId Network::add_flow(FlowSpec spec) {
  BBSIM_ASSERT(spec.volume >= 0 && !std::isnan(spec.volume),
               "flow volume must be >= 0");
  BBSIM_ASSERT(spec.weight > 0 && !std::isnan(spec.weight),
               "flow weight must be > 0");
  BBSIM_ASSERT(spec.rate_cap > 0 && !std::isnan(spec.rate_cap),
               std::isnan(spec.rate_cap) ? "flow rate cap is NaN (must be > 0)"
                                         : "flow rate cap must be > 0");
  for (const ResourceId r : spec.path) {
    if (r >= resources_.size()) {
      throw NotFoundError("flow path resource id " + std::to_string(r));
    }
  }
  // Recycle a retired id when one is available so id_to_index_ stays bounded
  // by the concurrent-flow high-water mark (a long churny run would otherwise
  // grow it by one slot per flow ever created).
  FlowId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = next_flow_id_++;
    id_to_index_.push_back(kNoFlow);
  }
  const std::size_t idx = flows_.size();
  id_to_index_[id] = idx;
  ids_.push_back(id);

  FlowState st;
  st.remaining = spec.volume;
  st.spec = std::move(spec);

  FlowLinks links;
  links.member_pos.resize(st.spec.path.size());
  for (std::uint32_t k = 0; k < st.spec.path.size(); ++k) {
    const ResourceId r = st.spec.path[k];
    links.member_pos[k] = static_cast<std::uint32_t>(members_[r].size());
    members_[r].push_back(MemberRef{idx, k});
    mark_resource_dirty(r);
  }
  if (st.spec.path.empty()) dirty_flow_ids_.push_back(id);

  // Append to the creation-order list: recycled ids re-enter at the tail.
  links.prev = tail_;
  links.next = kNoId;
  if (tail_ != kNoId) {
    links_[id_to_index_[tail_]].next = id;
  } else {
    head_ = id;
  }
  tail_ = id;

  flows_.push_back(std::move(st));
  links_.push_back(std::move(links));
  if (active_flows_ != nullptr) active_flows_->set(static_cast<double>(flows_.size()));
  return id;
}

std::size_t Network::checked_index(FlowId id) const {
  const std::size_t i = index_of(id);
  if (i == kNoFlow) throw NotFoundError("flow id " + std::to_string(id));
  return i;
}

void Network::remove_flow(FlowId id) {
  const std::size_t i = checked_index(id);

  // Detach from every resource's member list (swap-remove, fixing the moved
  // entry's back-pointer) and dirty the resources the flow leaves behind.
  const FlowState& st = flows_[i];
  FlowLinks& links = links_[i];
  for (std::uint32_t k = 0; k < st.spec.path.size(); ++k) {
    const ResourceId r = st.spec.path[k];
    std::vector<MemberRef>& mem = members_[r];
    const std::uint32_t pos = links.member_pos[k];
    const MemberRef moved = mem.back();
    mem[pos] = moved;
    mem.pop_back();
    if (moved.flow != i || moved.slot != k) {
      links_[moved.flow].member_pos[moved.slot] = pos;
    }
    mark_resource_dirty(r);
  }

  // Unlink from the creation-order list.
  if (links.prev != kNoId) {
    links_[id_to_index_[links.prev]].next = links.next;
  } else {
    head_ = links.next;
  }
  if (links.next != kNoId) {
    links_[id_to_index_[links.next]].prev = links.prev;
  } else {
    tail_ = links.prev;
  }

  const std::size_t last = flows_.size() - 1;
  if (i != last) {  // swap-remove, fixing the moved flow's index everywhere
    flows_[i] = std::move(flows_[last]);
    links_[i] = std::move(links_[last]);
    ids_[i] = ids_[last];
    id_to_index_[ids_[i]] = i;
    for (std::uint32_t k = 0; k < flows_[i].spec.path.size(); ++k) {
      members_[flows_[i].spec.path[k]][links_[i].member_pos[k]].flow = i;
    }
  }
  flows_.pop_back();
  links_.pop_back();
  ids_.pop_back();
  id_to_index_[id] = kNoFlow;
  free_ids_.push_back(id);
  if (active_flows_ != nullptr) active_flows_->set(static_cast<double>(flows_.size()));
}

const FlowState& Network::flow(FlowId id) const { return flows_[checked_index(id)]; }

void Network::consume(FlowId id, double bytes) {
  FlowState& st = flows_[checked_index(id)];
  st.remaining = std::max(0.0, st.remaining - bytes);
}

std::vector<FlowId> Network::flow_ids() const {
  std::vector<FlowId> out;
  out.reserve(flows_.size());
  for_each_flow([&out](FlowId id, const FlowState&) { out.push_back(id); });
  return out;
}

void Network::build_closure() {
  const std::size_t n = flows_.size();
  const std::size_t m = resources_.size();

  // Arena growth (amortised; steady state resizes nothing).
  if (flow_mark_.size() < n) flow_mark_.resize(n, 0);
  if (frozen_.size() < n) frozen_.resize(n, 0);
  if (res_mark_.size() < m) res_mark_.resize(m, 0);
  if (frozen_load_.size() < m) frozen_load_.resize(m, 0.0);
  if (unfrozen_weight_.size() < m) unfrozen_weight_.resize(m, 0.0);

  ++epoch_;
  closure_flows_.clear();
  closure_res_.clear();

  if (!incremental_ || !solved_once_) {
    // Full solve: every flow and resource is in scope.
    for (std::size_t f = 0; f < n; ++f) {
      flow_mark_[f] = epoch_;
      closure_flows_.push_back(f);
    }
    for (ResourceId r = 0; r < m; ++r) {
      res_mark_[r] = epoch_;
      closure_res_.push_back(r);
    }
    return;
  }

  // Seed: resources whose member set or capacity changed, plus flows
  // dirtied directly (pathless adds never reach a resource).
  for (const ResourceId r : dirty_res_) {
    if (res_mark_[r] != epoch_) {
      res_mark_[r] = epoch_;
      closure_res_.push_back(r);
    }
  }
  for (const FlowId id : dirty_flow_ids_) {
    const std::size_t f = index_of(id);
    if (f == kNoFlow || flow_mark_[f] == epoch_) continue;
    flow_mark_[f] = epoch_;
    closure_flows_.push_back(f);
    for (const ResourceId r : flows_[f].spec.path) {
      if (res_mark_[r] != epoch_) {
        res_mark_[r] = epoch_;
        closure_res_.push_back(r);
      }
    }
  }

  // BFS over the flow/resource bipartite graph: a dirty resource pulls in
  // its member flows, each flow pulls in the rest of its path, until the
  // affected bottleneck-connected components are fully enclosed.
  for (std::size_t qi = 0; qi < closure_res_.size(); ++qi) {
    for (const MemberRef& e : members_[closure_res_[qi]]) {
      if (flow_mark_[e.flow] == epoch_) continue;
      flow_mark_[e.flow] = epoch_;
      closure_flows_.push_back(e.flow);
      for (const ResourceId r : flows_[e.flow].spec.path) {
        if (res_mark_[r] != epoch_) {
          res_mark_[r] = epoch_;
          closure_res_.push_back(r);
        }
      }
    }
  }

  // Enumeration order inside the water-filling loops must match the full
  // solver's (ascending index) so the two modes freeze ties identically.
  std::sort(closure_flows_.begin(), closure_flows_.end());
  std::sort(closure_res_.begin(), closure_res_.end());
}

int Network::solve() {
  if (solve_calls_ != nullptr) solve_calls_->add(1.0);

  build_closure();
  // Dirt is consumed by this solve, whatever its scope.
  for (const ResourceId r : dirty_res_) res_dirty_[r] = 0;
  dirty_res_.clear();
  dirty_flow_ids_.clear();
  solved_once_ = true;

  const int rounds = solve_closure();

  if (solve_rounds_ != nullptr) solve_rounds_->add(static_cast<double>(rounds));
  if (flows_resolved_ != nullptr) {
    flows_resolved_->add(static_cast<double>(closure_flows_.size()));
  }
  if (rounds_hist_ != nullptr) rounds_hist_->record(static_cast<double>(rounds));
  BBSIM_AUDIT_HOOK(if (post_solve_) post_solve_(*this, rounds));
  return rounds;
}

int Network::solve_closure() {
  // Water-filling state, restricted to the closure. `frozen_load_[r]` is the
  // sum of already-frozen closure rates on r (clean flows never cross a
  // closure resource: the closure encloses whole components); unfrozen
  // weights are recomputed exactly each round -- an incremental
  // decrement-and-clamp loses weight to floating-point cancellation (a
  // resource could claim zero unfrozen weight while unfrozen flows still
  // cross it, poisoning the level comparison with 0/0 = NaN).
  for (const std::size_t f : closure_flows_) {
    frozen_[f] = 0;
    flows_[f].rate = 0.0;
    flows_[f].bottlenecked_by_cap = false;
  }
  for (const ResourceId r : closure_res_) frozen_load_[r] = 0.0;

  std::size_t remaining = closure_flows_.size();
  int rounds = 0;
  double level = 0.0;

  while (remaining > 0) {
    ++rounds;
    for (const ResourceId r : closure_res_) unfrozen_weight_[r] = 0.0;
    for (const std::size_t f : closure_flows_) {
      if (frozen_[f] != 0) continue;
      for (const ResourceId r : flows_[f].spec.path) {
        unfrozen_weight_[r] += flows_[f].spec.weight;
      }
    }

    // Next saturation level among closure resources.
    double next_level = kUnlimited;
    for (const ResourceId r : closure_res_) {
      if (unfrozen_weight_[r] <= 0.0) continue;
      if (resources_[r].capacity == kUnlimited) continue;
      const double lvl = (resources_[r].capacity - frozen_load_[r]) / unfrozen_weight_[r];
      next_level = std::min(next_level, std::max(lvl, 0.0));
    }
    // Next per-flow cap level.
    bool cap_binds = false;
    for (const std::size_t f : closure_flows_) {
      if (frozen_[f] != 0) continue;
      const double cap_level = flows_[f].spec.rate_cap / flows_[f].spec.weight;
      if (cap_level < next_level) {
        next_level = cap_level;
        cap_binds = true;
        // Exact tie detection on identically-computed levels: an epsilon
        // here would change which flows freeze in a round, i.e. solver
        // semantics; an ulp miss only defers the cap one round.
      } else if (cap_level == next_level &&  // NOLINT(bbsim-float-equality)
                 next_level != kUnlimited) {
        cap_binds = true;
      }
    }

    if (next_level == kUnlimited) {
      // No finite constraint anywhere: unconstrained flows get infinite rate
      // (they complete instantly; the manager treats them as zero-duration).
      for (const std::size_t f : closure_flows_) {
        if (frozen_[f] == 0) {
          flows_[f].rate = kUnlimited;
          frozen_[f] = 1;
        }
      }
      remaining = 0;
      break;
    }

    level = next_level;

    // Freeze every flow that binds at this level: flows whose cap equals the
    // level, and flows through a resource that saturates at the level.
    to_freeze_.clear();
    for (const std::size_t f : closure_flows_) {
      if (frozen_[f] != 0) continue;
      const double cap_level = flows_[f].spec.rate_cap / flows_[f].spec.weight;
      if (cap_binds && cap_level <= level + 1e-15 * std::max(1.0, level)) {
        to_freeze_.push_back(f);
        flows_[f].bottlenecked_by_cap = true;
        continue;
      }
      bool saturated = false;
      for (const ResourceId r : flows_[f].spec.path) {
        if (resources_[r].capacity == kUnlimited) continue;
        const double uw = unfrozen_weight_[r];
        if (uw <= 0.0) {
          // No unfrozen weight registered (possible only when this flow's
          // weight was absorbed in floating-point summation): never divide
          // by zero. An exhausted resource still saturates the flow.
          if (resources_[r].capacity <= frozen_load_[r]) {
            saturated = true;
            break;
          }
          continue;
        }
        const double lvl = (resources_[r].capacity - frozen_load_[r]) / uw;
        if (lvl <= level + 1e-12 * std::max(1.0, level)) {
          saturated = true;
          break;
        }
      }
      if (saturated) to_freeze_.push_back(f);
    }

    if (to_freeze_.empty()) {
      // Numerical corner: nothing bound exactly; freeze the flow with the
      // tightest constraint to guarantee progress.
      std::size_t best = kNoFlow;
      double best_lvl = kUnlimited;
      for (const std::size_t f : closure_flows_) {
        if (frozen_[f] != 0) continue;
        double lvl = flows_[f].spec.rate_cap / flows_[f].spec.weight;
        for (const ResourceId r : flows_[f].spec.path) {
          if (resources_[r].capacity == kUnlimited) continue;
          const double uw = unfrozen_weight_[r];
          if (uw <= 0.0) {  // same degenerate case as the saturation scan
            if (resources_[r].capacity <= frozen_load_[r]) lvl = 0.0;
            continue;
          }
          lvl = std::min(lvl, (resources_[r].capacity - frozen_load_[r]) / uw);
        }
        if (lvl < best_lvl) {
          best_lvl = lvl;
          best = f;
        }
      }
      if (best == kNoFlow) break;  // all remaining flows unconstrained
      to_freeze_.push_back(best);
    }

    for (const std::size_t f : to_freeze_) {
      frozen_[f] = 1;
      const double rate = std::min(level * flows_[f].spec.weight, flows_[f].spec.rate_cap);
      flows_[f].rate = std::max(rate, 0.0);
      for (const ResourceId r : flows_[f].spec.path) frozen_load_[r] += flows_[f].rate;
      --remaining;
    }
  }
  return rounds;
}

std::vector<SolveIssue> Network::solve_issues(double tolerance) const {
  std::vector<SolveIssue> issues;
  const std::size_t m = resources_.size();
  std::vector<double> load(m, 0.0);
  for (const FlowState& f : flows_) {
    if (f.rate == kUnlimited) continue;  // zero-duration flow, no steady load
    for (const ResourceId r : f.spec.path) load[r] += f.rate;
  }
  for (std::size_t r = 0; r < m; ++r) {
    if (resources_[r].capacity == kUnlimited) continue;
    if (load[r] > resources_[r].capacity * (1.0 + tolerance) + tolerance) {
      issues.push_back(SolveIssue{
          SolveIssue::Kind::kOverCapacity, resources_[r].name,
          "resource '" + resources_[r].name + "' over capacity: " +
              std::to_string(load[r]) + " > " +
              std::to_string(resources_[r].capacity)});
    }
  }
  // Max-min/KKT certificate: every flow is either at its cap or crosses a
  // resource that is (nearly) saturated -- otherwise its rate could grow
  // without shrinking any smaller flow, so the allocation is not max-min.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const FlowState& f = flows_[i];
    if (f.rate == kUnlimited) continue;
    if (f.rate >= f.spec.rate_cap * (1.0 - tolerance)) continue;
    bool bottleneck = f.spec.path.empty();  // pathless flows must be capped
    for (const ResourceId r : f.spec.path) {
      if (resources_[r].capacity == kUnlimited) continue;
      if (load[r] >= resources_[r].capacity * (1.0 - tolerance) - tolerance) {
        bottleneck = true;
        break;
      }
    }
    if (!bottleneck) {
      issues.push_back(SolveIssue{
          SolveIssue::Kind::kNotMaxMin, "flow " + std::to_string(ids_[i]),
          "flow has spare capacity everywhere but is not at its cap (rate=" +
              std::to_string(f.rate) + ")"});
    }
  }
  return issues;
}

void Network::check_invariants(double tolerance) const {
  const std::vector<SolveIssue> issues = solve_issues(tolerance);
  BBSIM_ASSERT(issues.empty(),
               issues.empty() ? std::string() : issues.front().what);
}

}  // namespace bbsim::flow
