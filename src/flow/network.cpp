#include "flow/network.hpp"

#include <algorithm>
#include <cmath>

namespace bbsim::flow {

using util::InvariantError;
using util::NotFoundError;

namespace {
/// Distinguish "NaN capacity" from "negative capacity" in error messages:
/// both are rejected, but naming the actual violation makes upstream bugs
/// (uninitialised spec fields, bad arithmetic) much easier to trace.
std::string capacity_violation(double capacity) {
  return std::isnan(capacity) ? "capacity is NaN"
                              : "negative capacity " + std::to_string(capacity);
}
}  // namespace

ResourceId Network::add_resource(std::string name, double capacity) {
  BBSIM_ASSERT(capacity >= 0 && !std::isnan(capacity),
               "resource '" + name + "': " + capacity_violation(capacity));
  resources_.push_back(Resource{std::move(name), capacity, 0.0, 0.0});
  return static_cast<ResourceId>(resources_.size() - 1);
}

const Resource& Network::resource(ResourceId id) const {
  if (id >= resources_.size()) throw NotFoundError("resource id " + std::to_string(id));
  return resources_[id];
}

Resource& Network::resource(ResourceId id) {
  if (id >= resources_.size()) throw NotFoundError("resource id " + std::to_string(id));
  return resources_[id];
}

void Network::set_capacity(ResourceId id, double capacity) {
  BBSIM_ASSERT(capacity >= 0 && !std::isnan(capacity),
               "set_capacity: " + capacity_violation(capacity));
  resource(id).capacity = capacity;
}

void Network::set_metrics(stats::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    solve_calls_ = nullptr;
    solve_rounds_ = nullptr;
    active_flows_ = nullptr;
    rounds_hist_ = nullptr;
    return;
  }
  solve_calls_ = &metrics->counter("flow.solve_calls");
  solve_rounds_ = &metrics->counter("flow.solve_rounds");
  active_flows_ = &metrics->gauge("flow.active_flows");
  rounds_hist_ = &metrics->histogram("flow.solve_rounds_per_call");
}

FlowId Network::add_flow(FlowSpec spec) {
  BBSIM_ASSERT(spec.volume >= 0 && !std::isnan(spec.volume),
               "flow volume must be >= 0");
  BBSIM_ASSERT(spec.weight > 0 && !std::isnan(spec.weight),
               "flow weight must be > 0");
  BBSIM_ASSERT(spec.rate_cap > 0 && !std::isnan(spec.rate_cap),
               std::isnan(spec.rate_cap) ? "flow rate cap is NaN (must be > 0)"
                                         : "flow rate cap must be > 0");
  for (const ResourceId r : spec.path) {
    if (r >= resources_.size()) {
      throw NotFoundError("flow path resource id " + std::to_string(r));
    }
  }
  // Recycle a retired id when one is available so id_to_index_ stays bounded
  // by the concurrent-flow high-water mark (a long churny run would otherwise
  // grow it by one slot per flow ever created).
  FlowId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = next_flow_id_++;
    id_to_index_.push_back(kNoFlow);
  }
  id_to_index_[id] = flows_.size();
  ids_.push_back(id);
  FlowState st;
  st.remaining = spec.volume;
  st.spec = std::move(spec);
  flows_.push_back(std::move(st));
  if (active_flows_ != nullptr) active_flows_->set(static_cast<double>(flows_.size()));
  return id;
}

std::size_t Network::checked_index(FlowId id) const {
  const std::size_t i = index_of(id);
  if (i == kNoFlow) throw NotFoundError("flow id " + std::to_string(id));
  return i;
}

void Network::remove_flow(FlowId id) {
  const std::size_t i = checked_index(id);
  const std::size_t last = flows_.size() - 1;
  if (i != last) {  // swap-remove, fixing the moved flow's index
    flows_[i] = std::move(flows_[last]);
    ids_[i] = ids_[last];
    id_to_index_[ids_[i]] = i;
  }
  flows_.pop_back();
  ids_.pop_back();
  id_to_index_[id] = kNoFlow;
  free_ids_.push_back(id);
  if (active_flows_ != nullptr) active_flows_->set(static_cast<double>(flows_.size()));
}

const FlowState& Network::flow(FlowId id) const { return flows_[checked_index(id)]; }

void Network::consume(FlowId id, double bytes) {
  FlowState& st = flows_[checked_index(id)];
  st.remaining = std::max(0.0, st.remaining - bytes);
}

std::vector<FlowId> Network::flow_ids() const {
  std::vector<FlowId> out(ids_.begin(), ids_.end());
  std::sort(out.begin(), out.end());  // creation order
  return out;
}

int Network::solve() {
  const std::size_t n = flows_.size();
  const std::size_t m = resources_.size();

  if (solve_calls_ != nullptr) solve_calls_->add(1.0);

  // Water-filling state. `level[f]` is the water level at which flow f froze;
  // its rate is weight * level. Unfrozen flows all sit at the current level.
  std::vector<bool> frozen(n, false);
  std::vector<double> frozen_load(m, 0.0);    // sum of frozen rates per resource
  std::vector<double> unfrozen_weight(m, 0.0);  // sum of unfrozen weights per resource

  for (std::size_t f = 0; f < n; ++f) {
    flows_[f].rate = 0.0;
    flows_[f].bottlenecked_by_cap = false;
  }

  std::size_t remaining = n;
  int rounds = 0;
  double level = 0.0;

  while (remaining > 0) {
    ++rounds;
    // Recompute per-resource unfrozen weight exactly each round. The
    // incremental decrement-and-clamp it replaces loses weight to
    // floating-point cancellation/absorption: a resource could end up with
    // unfrozen_weight == 0 while unfrozen flows still cross it, and the
    // saturation scan's 0/0 then poisons the level comparison with NaN
    // (freezing flows far above the resource's true spare capacity).
    std::fill(unfrozen_weight.begin(), unfrozen_weight.end(), 0.0);
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f]) continue;
      for (const ResourceId r : flows_[f].spec.path) {
        unfrozen_weight[r] += flows_[f].spec.weight;
      }
    }

    // Next saturation level among resources.
    double next_level = kUnlimited;
    for (std::size_t r = 0; r < m; ++r) {
      if (unfrozen_weight[r] <= 0.0) continue;
      if (resources_[r].capacity == kUnlimited) continue;
      const double lvl = (resources_[r].capacity - frozen_load[r]) / unfrozen_weight[r];
      next_level = std::min(next_level, std::max(lvl, 0.0));
    }
    // Next per-flow cap level.
    bool cap_binds = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f]) continue;
      const double cap_level = flows_[f].spec.rate_cap / flows_[f].spec.weight;
      if (cap_level < next_level) {
        next_level = cap_level;
        cap_binds = true;
      } else if (cap_level == next_level && next_level != kUnlimited) {
        cap_binds = true;
      }
    }

    if (next_level == kUnlimited) {
      // No finite constraint anywhere: unconstrained flows get infinite rate
      // (they complete instantly; the manager treats them as zero-duration).
      for (std::size_t f = 0; f < n; ++f) {
        if (!frozen[f]) {
          flows_[f].rate = kUnlimited;
          frozen[f] = true;
        }
      }
      remaining = 0;
      break;
    }

    level = next_level;

    // Freeze every flow that binds at this level: flows whose cap equals the
    // level, and flows through a resource that saturates at the level.
    std::vector<std::size_t> to_freeze;
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f]) continue;
      const double cap_level = flows_[f].spec.rate_cap / flows_[f].spec.weight;
      if (cap_binds && cap_level <= level + 1e-15 * std::max(1.0, level)) {
        to_freeze.push_back(f);
        flows_[f].bottlenecked_by_cap = true;
        continue;
      }
      bool saturated = false;
      for (const ResourceId r : flows_[f].spec.path) {
        if (resources_[r].capacity == kUnlimited) continue;
        const double uw = unfrozen_weight[r];
        if (uw <= 0.0) {
          // No unfrozen weight registered (possible only when this flow's
          // weight was absorbed in floating-point summation): never divide
          // by zero. An exhausted resource still saturates the flow.
          if (resources_[r].capacity <= frozen_load[r]) {
            saturated = true;
            break;
          }
          continue;
        }
        const double lvl = (resources_[r].capacity - frozen_load[r]) / uw;
        if (lvl <= level + 1e-12 * std::max(1.0, level)) {
          saturated = true;
          break;
        }
      }
      if (saturated) to_freeze.push_back(f);
    }

    if (to_freeze.empty()) {
      // Numerical corner: nothing bound exactly; freeze the flow with the
      // tightest constraint to guarantee progress.
      std::size_t best = kNoFlow;
      double best_lvl = kUnlimited;
      for (std::size_t f = 0; f < n; ++f) {
        if (frozen[f]) continue;
        double lvl = flows_[f].spec.rate_cap / flows_[f].spec.weight;
        for (const ResourceId r : flows_[f].spec.path) {
          if (resources_[r].capacity == kUnlimited) continue;
          const double uw = unfrozen_weight[r];
          if (uw <= 0.0) {  // same degenerate case as the saturation scan
            if (resources_[r].capacity <= frozen_load[r]) lvl = 0.0;
            continue;
          }
          lvl = std::min(lvl, (resources_[r].capacity - frozen_load[r]) / uw);
        }
        if (lvl < best_lvl) {
          best_lvl = lvl;
          best = f;
        }
      }
      if (best == kNoFlow) break;  // all remaining flows unconstrained
      to_freeze.push_back(best);
    }

    for (const std::size_t f : to_freeze) {
      frozen[f] = true;
      const double rate = std::min(level * flows_[f].spec.weight, flows_[f].spec.rate_cap);
      flows_[f].rate = std::max(rate, 0.0);
      for (const ResourceId r : flows_[f].spec.path) frozen_load[r] += flows_[f].rate;
      --remaining;
    }
  }
  if (solve_rounds_ != nullptr) solve_rounds_->add(static_cast<double>(rounds));
  if (rounds_hist_ != nullptr) rounds_hist_->record(static_cast<double>(rounds));
  BBSIM_AUDIT_HOOK(if (post_solve_) post_solve_(*this, rounds));
  return rounds;
}

std::vector<SolveIssue> Network::solve_issues(double tolerance) const {
  std::vector<SolveIssue> issues;
  const std::size_t m = resources_.size();
  std::vector<double> load(m, 0.0);
  for (const FlowState& f : flows_) {
    if (f.rate == kUnlimited) continue;  // zero-duration flow, no steady load
    for (const ResourceId r : f.spec.path) load[r] += f.rate;
  }
  for (std::size_t r = 0; r < m; ++r) {
    if (resources_[r].capacity == kUnlimited) continue;
    if (load[r] > resources_[r].capacity * (1.0 + tolerance) + tolerance) {
      issues.push_back(SolveIssue{
          SolveIssue::Kind::kOverCapacity, resources_[r].name,
          "resource '" + resources_[r].name + "' over capacity: " +
              std::to_string(load[r]) + " > " +
              std::to_string(resources_[r].capacity)});
    }
  }
  // Max-min/KKT certificate: every flow is either at its cap or crosses a
  // resource that is (nearly) saturated -- otherwise its rate could grow
  // without shrinking any smaller flow, so the allocation is not max-min.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const FlowState& f = flows_[i];
    if (f.rate == kUnlimited) continue;
    if (f.rate >= f.spec.rate_cap * (1.0 - tolerance)) continue;
    bool bottleneck = f.spec.path.empty();  // pathless flows must be capped
    for (const ResourceId r : f.spec.path) {
      if (resources_[r].capacity == kUnlimited) continue;
      if (load[r] >= resources_[r].capacity * (1.0 - tolerance) - tolerance) {
        bottleneck = true;
        break;
      }
    }
    if (!bottleneck) {
      issues.push_back(SolveIssue{
          SolveIssue::Kind::kNotMaxMin, "flow " + std::to_string(ids_[i]),
          "flow has spare capacity everywhere but is not at its cap (rate=" +
              std::to_string(f.rate) + ")"});
    }
  }
  return issues;
}

void Network::check_invariants(double tolerance) const {
  const std::vector<SolveIssue> issues = solve_issues(tolerance);
  BBSIM_ASSERT(issues.empty(),
               issues.empty() ? std::string() : issues.front().what);
}

}  // namespace bbsim::flow
