// bbsim -- max-min fair bandwidth sharing (the SimGrid-style flow model).
//
// Every data movement in the simulator is a *flow*: an amount of bytes
// traversing a set of capacity-constrained resources (disk channels, network
// links, metadata servers). Concurrent flows share resource capacity
// according to (weighted) max-min fairness with optional per-flow rate caps,
// computed by the classic progressive-filling ("water-filling") algorithm:
//
//   raise a common water level t for all unfrozen flows;
//   a resource saturates when  frozen_rates + t * unfrozen_count == capacity;
//   a flow freezes when t reaches its rate cap;
//   freeze at the earliest such event and repeat.
//
// This is the mechanism that makes burst-buffer contention *emerge* when
// many workflow pipelines do I/O at once (paper Figures 7 and 11), instead
// of being hard-coded into task runtimes.
//
// The solver is *incremental*: add_flow / remove_flow / set_capacity mark
// the touched resources dirty, and solve() re-runs progressive filling only
// over the bottleneck-connected components reachable from the dirty set
// (a resource's member flows, those flows' other resources, and so on).
// Flows in untouched components keep their previously converged rates --
// max-min decomposes exactly across components, so the result is identical
// to a full re-solve. All per-solve scratch is arena-allocated on the
// network (epoch-stamped marks, reusable vectors), so steady-state solves
// allocate nothing. set_incremental(false) restores the historical
// solve-everything behaviour (the benchmark baseline and a debugging aid).
//
// Network is a pure solver over a static "current instant"; it knows nothing
// about time. FlowManager (manager.hpp) binds it to the event engine.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "stats/metrics.hpp"
#include "util/error.hpp"

namespace bbsim::flow {

using ResourceId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr double kUnlimited = std::numeric_limits<double>::infinity();

/// A capacity-constrained resource (bytes/second shared by its flows).
struct Resource {
  std::string name;
  double capacity = kUnlimited;
  // --- accounting (maintained by FlowManager, see manager.hpp) ---
  double bytes_served = 0.0;  ///< total bytes pushed through this resource
  double busy_time = 0.0;     ///< total time with at least one active flow
};

/// Parameters for a new flow.
struct FlowSpec {
  double volume = 0.0;                  ///< bytes to transfer (>= 0)
  std::vector<ResourceId> path;         ///< resources traversed (may be empty)
  double rate_cap = kUnlimited;         ///< per-flow ceiling (e.g. one POSIX stream)
  double weight = 1.0;                  ///< max-min share weight (> 0)
  /// Human-readable description for the timeline ("read f.fits pfs->host0").
  /// Empty unless timeline recording is on -- label construction costs
  /// allocations, so producers only fill it when someone will look.
  std::string label{};
};

/// Allocation state of one active flow.
struct FlowState {
  FlowSpec spec;
  double remaining = 0.0;  ///< bytes still to transfer
  double rate = 0.0;       ///< current allocation (bytes/second)
  bool bottlenecked_by_cap = false;  ///< true if the cap froze it (diagnostics)
};

/// One violated solver invariant, found by solve_issues(). `kOverCapacity`
/// means a resource's summed flow rates exceed its capacity (feasibility);
/// `kNotMaxMin` means a flow below its rate cap crosses no saturated
/// resource -- the max-min/KKT certificate fails: that flow's rate could be
/// raised without lowering any smaller flow.
struct SolveIssue {
  enum class Kind { kOverCapacity, kNotMaxMin };
  Kind kind = Kind::kOverCapacity;
  std::string subject;  ///< resource name (over-capacity) or flow id string
  std::string what;
};

/// Invoked after every solve() with the converged network and the round
/// count -- the audit hook verifying each allocation's fairness certificate.
using PostSolveHook = std::function<void(const class Network&, int rounds)>;

/// The set of resources and active flows, with the max-min solver.
class Network {
 public:
  Network() = default;

  /// Create a resource; `capacity` in bytes/second (kUnlimited allowed).
  ResourceId add_resource(std::string name, double capacity);

  std::size_t resource_count() const { return resources_.size(); }
  const Resource& resource(ResourceId id) const;
  Resource& resource(ResourceId id);

  /// Change a resource's capacity (used by interference injection). The
  /// caller is responsible for re-solving. A no-op value change does not
  /// dirty the resource.
  void set_capacity(ResourceId id, double capacity);

  /// Register a new flow. Rates are stale until solve() is called.
  FlowId add_flow(FlowSpec spec);

  /// Remove a flow (completed or aborted).
  void remove_flow(FlowId id);

  bool has_flow(FlowId id) const { return index_of(id) != kNoFlow; }
  std::size_t flow_count() const { return flows_.size(); }
  const FlowState& flow(FlowId id) const;

  /// Decrease a flow's remaining volume (called by the manager as time
  /// advances). Clamps at zero. Does not dirty the allocation.
  void consume(FlowId id, double bytes);

  /// Recompute flow rates with progressive filling. In incremental mode
  /// (the default) only the bottleneck-connected components touched since
  /// the last solve are re-solved -- O(dirty component) -- and untouched
  /// flows keep their converged rates; with set_incremental(false) every
  /// flow is re-solved from scratch, O(F * R) per freezing round. Returns
  /// the number of water-filling rounds run.
  int solve();

  /// Toggle incremental solving (default on). Turning it off makes every
  /// solve() a full re-solve -- the benchmark baseline.
  void set_incremental(bool on) { incremental_ = on; }
  bool incremental() const { return incremental_; }

  /// All flow ids currently active, in creation order (deterministic).
  /// Creation order is tracked explicitly (an intrusive list), so it
  /// survives id recycling: a recycled id keeps its *new* flow's position,
  /// not the retired flow's numeric rank.
  std::vector<FlowId> flow_ids() const;

  /// Visit every active flow in creation order without allocating.
  /// `fn(FlowId, const FlowState&)` must not add or remove flows.
  template <typename Fn>
  void for_each_flow(Fn&& fn) const {
    for (FlowId id = head_; id != kNoId;) {
      const std::size_t i = id_to_index_[id];
      const FlowId next = links_[i].next;
      fn(id, flows_[i]);
      id = next;
    }
  }

  /// Size of the id -> index table. Bounded by the high-water mark of
  /// concurrently active flows (ids are recycled through a free-list), not
  /// by the total number of flows ever created.
  std::size_t id_table_size() const { return id_to_index_.size(); }

  /// Publish solver metrics (solve calls/rounds, active-flow high-water
  /// mark, flows re-solved per call) into `metrics`; nullptr disables
  /// publishing (the default).
  void set_metrics(stats::MetricsRegistry* metrics);

  // ------------------------------------------------------- invariant checks
  /// Returns every violated solver invariant: resources over capacity
  /// (feasibility) and flows below their cap with no saturated bottleneck
  /// (the max-min optimality certificate: no flow's rate can increase
  /// without decreasing a smaller one). Empty = the allocation is a valid
  /// weighted max-min optimum within `tolerance`. Always checks the whole
  /// network, so in audited runs every incremental solve is certified
  /// against the global optimum, not just the re-solved component.
  std::vector<SolveIssue> solve_issues(double tolerance = 1e-6) const;

  /// Throwing form of solve_issues(): raises InvariantError on the first
  /// violation. Used by tests and debug builds.
  void check_invariants(double tolerance = 1e-6) const;

  /// Install a hook invoked after every solve() (nullptr/default-empty
  /// disables). The audit layer uses it to certify each converged
  /// allocation; call sites compile out when BBSIM_AUDIT=OFF.
  void set_post_solve_hook(PostSolveHook hook) { post_solve_ = std::move(hook); }

 private:
  static constexpr std::size_t kNoFlow = static_cast<std::size_t>(-1);
  static constexpr FlowId kNoId = static_cast<FlowId>(-1);

  /// One occurrence of a flow on a resource (a flow crossing a resource
  /// twice has two entries -- it consumes a double share).
  struct MemberRef {
    std::size_t flow;    ///< index into flows_
    std::uint32_t slot;  ///< which path entry of that flow
  };

  /// Per-flow bookkeeping parallel to flows_ (swap-removed together).
  struct FlowLinks {
    FlowId prev = kNoId;  ///< creation-order intrusive list
    FlowId next = kNoId;
    /// Position of (this flow, slot k) inside members_[spec.path[k]].
    std::vector<std::uint32_t> member_pos;
  };

  std::vector<Resource> resources_;
  std::vector<FlowId> ids_;          // parallel arrays for cache-friendly solve
  std::vector<FlowState> flows_;
  std::vector<FlowLinks> links_;     // parallel to flows_
  std::vector<std::vector<MemberRef>> members_;  // per resource: crossing flows
  std::vector<std::size_t> id_to_index_;  // FlowId -> index, kNoFlow when gone
  std::vector<FlowId> free_ids_;     // recycled ids (keeps id_to_index_ bounded)
  FlowId next_flow_id_ = 0;
  FlowId head_ = kNoId;  ///< oldest active flow (creation order)
  FlowId tail_ = kNoId;  ///< newest active flow

  // --- dirty tracking between solves -------------------------------------
  bool incremental_ = true;
  bool solved_once_ = false;
  std::vector<char> res_dirty_;          // per resource: already in dirty_res_
  std::vector<ResourceId> dirty_res_;    // resources whose members/capacity changed
  std::vector<FlowId> dirty_flow_ids_;   // directly-dirtied flows (pathless adds)

  // --- arena-allocated solve scratch (zero steady-state allocation) ------
  std::uint64_t epoch_ = 0;                   // current solve generation
  std::vector<std::uint64_t> flow_mark_;      // == epoch_ -> flow in closure
  std::vector<std::uint64_t> res_mark_;       // == epoch_ -> resource in closure
  std::vector<char> frozen_;                  // per flow index, closure only
  std::vector<double> frozen_load_;           // per resource, closure only
  std::vector<double> unfrozen_weight_;       // per resource, closure only
  std::vector<std::size_t> closure_flows_;    // flow indices, ascending
  std::vector<ResourceId> closure_res_;       // resource ids, ascending
  std::vector<std::size_t> to_freeze_;

  PostSolveHook post_solve_;

  // Optional metrics sinks (cached so solve() skips the name lookups).
  stats::Counter* solve_calls_ = nullptr;
  stats::Counter* solve_rounds_ = nullptr;
  stats::Counter* flows_resolved_ = nullptr;  ///< closure sizes, accumulated
  stats::Gauge* active_flows_ = nullptr;
  stats::Histogram* rounds_hist_ = nullptr;  ///< rounds-per-solve distribution

  std::size_t index_of(FlowId id) const {
    return id < id_to_index_.size() ? id_to_index_[id] : kNoFlow;
  }
  std::size_t checked_index(FlowId id) const;

  void mark_resource_dirty(ResourceId r);
  /// Computes closure_flows_ / closure_res_ for this solve: everything in
  /// full mode, the dirty-component closure in incremental mode.
  void build_closure();
  /// Progressive filling restricted to the closure. Returns rounds.
  int solve_closure();
};

}  // namespace bbsim::flow
