// bbsim -- FlowManager: binds the max-min Network to the event Engine.
//
// The manager advances flow progress between events, re-solves the rate
// allocation whenever the flow set (or a capacity) changes, and fires each
// flow's completion callback at the exact simulated time its byte count
// reaches zero. It also integrates per-resource accounting (bytes served,
// busy time) used for the achieved-bandwidth experiment (paper Figure 9).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/network.hpp"
#include "sim/engine.hpp"

namespace bbsim::trace {
class TimelineRecorder;
struct ProfileSection;
class Profiler;
}  // namespace bbsim::trace

namespace bbsim::flow {

/// Invoked at the simulated instant a flow's last byte arrives.
using CompletionHandler = std::function<void()>;

class FlowManager {
 public:
  /// The engine must outlive the manager.
  explicit FlowManager(sim::Engine& engine) : engine_(engine) {}
  FlowManager(const FlowManager&) = delete;
  FlowManager& operator=(const FlowManager&) = delete;

  /// Expose the underlying network for resource creation and inspection.
  Network& network() { return net_; }
  const Network& network() const { return net_; }

  /// Start a flow; `on_complete` fires when all bytes have moved.
  /// A zero-volume flow completes at the current time (via a scheduled
  /// zero-delay event, preserving run-to-completion semantics).
  FlowId start(FlowSpec spec, CompletionHandler on_complete);

  /// Abort an in-progress flow; its handler is never called.
  /// Returns false if the flow already completed.
  bool abort(FlowId id);

  /// Cancel an in-flight transfer mid-flow: progress up to the current
  /// simulated time is settled into the per-resource ledger (bytes_served /
  /// busy_time), the unmoved remainder is discarded, and the completion
  /// handler never fires. Returns the bytes that actually moved, or
  /// std::nullopt when the flow is unknown or already completed (a no-op --
  /// cancelling after the handler ran does not reopen anything). This is
  /// the primitive the resilience layer uses to kill a crashed host's I/O
  /// without losing the ledger's account of what already transferred.
  std::optional<double> cancel(FlowId id);

  /// Change a resource capacity at the current simulated time (interference
  /// injection); progress is settled first, then rates are recomputed.
  void set_capacity(ResourceId id, double capacity);

  /// Current transfer rate of an active flow (bytes/sec).
  double current_rate(FlowId id) const { return net_.flow(id).rate; }

  /// Number of in-flight flows.
  std::size_t active_count() const { return net_.flow_count(); }

  /// Re-runs the solver invariant checks (test hook).
  void check_invariants() const { net_.check_invariants(); }

  /// Publish flow metrics: forwards to the network (solver counters) and
  /// samples per-resource utilization (`flow.util.<resource>`) at every
  /// settle point, weighted by the interval length so the series' mean is
  /// the time-weighted utilization. nullptr disables publishing. Also
  /// records a `flow.transfer_seconds` histogram of completed-flow
  /// durations.
  void set_metrics(stats::MetricsRegistry* metrics);

  /// Publish per-flow transfer spans (begin / allocated-rate changes / end)
  /// into `timeline`; nullptr disables (the default). Producers should set
  /// FlowSpec::label when a timeline is installed (see has_timeline()).
  void set_timeline(trace::TimelineRecorder* timeline);
  bool has_timeline() const { return timeline_ != nullptr; }

  /// Aggregate wall-clock solver cost ("flow.solve") into `profiler`;
  /// nullptr disables (the default).
  void set_profiler(trace::Profiler* profiler);

  /// Declare a named group of resources whose combined throughput is one
  /// achieved-bandwidth signal (one group per storage service: its disk
  /// read + write channels). Every settle interval with dt > 0 samples
  /// `storage.<name>.achieved_bandwidth` (bytes/s, dt-weighted) into the
  /// metrics registry and, when a timeline is installed, the counter track
  /// of the same name -- the time-resolved Figure 9 signal.
  void register_bandwidth_group(const std::string& name,
                                std::vector<ResourceId> resources);

 private:
  sim::Engine& engine_;
  Network net_;
  std::unordered_map<FlowId, CompletionHandler> handlers_;
  sim::EventId wake_event_ = 0;
  bool wake_scheduled_ = false;
  sim::Time last_settle_ = 0.0;
  /// Per-resource settle scratch, reused across calls so the per-event cost
  /// is O(active flows + touched resources), not O(all resources) plus an
  /// allocation. Entries outside touched_ are always zero. Exception: with
  /// a metrics registry installed, utilization sampling still visits every
  /// finite-capacity resource per settle interval (the series' time-weighted
  /// mean needs a sample even at zero utilization), so that path is
  /// O(all resources).
  std::vector<double> res_bytes_;
  std::vector<char> res_busy_;
  std::vector<ResourceId> touched_;
  std::vector<FlowId> done_;  ///< completion scratch for on_wake()
  stats::MetricsRegistry* metrics_ = nullptr;
  /// Cached per-resource utilization series (index = ResourceId); refreshed
  /// lazily when resources were added since the last settle.
  std::vector<stats::TimeSeries*> util_series_;

  trace::TimelineRecorder* timeline_ = nullptr;
  trace::ProfileSection* solve_profile_ = nullptr;
  stats::Histogram* transfer_hist_ = nullptr;
  /// Flow start times for the transfer-duration histogram; maintained only
  /// while a metrics registry is installed.
  std::unordered_map<FlowId, sim::Time> flow_started_;

  struct BandwidthGroup {
    std::string name;
    std::vector<ResourceId> resources;
    stats::TimeSeries* series = nullptr;  ///< when metrics are on
    std::size_t track = 0;                ///< when a timeline is on
    bool track_ready = false;
  };
  std::vector<BandwidthGroup> bandwidth_groups_;

  /// Apply elapsed progress since the last settle point.
  void settle();
  /// Re-solve rates and (re)schedule the next completion event.
  void reschedule();
  /// Fired at the next completion instant.
  void on_wake();
};

}  // namespace bbsim::flow
