// bbsim -- FlowManager: binds the max-min Network to the event Engine.
//
// The manager advances flow progress between events, re-solves the rate
// allocation whenever the flow set (or a capacity) changes, and fires each
// flow's completion callback at the exact simulated time its byte count
// reaches zero. It also integrates per-resource accounting (bytes served,
// busy time) used for the achieved-bandwidth experiment (paper Figure 9).
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "flow/network.hpp"
#include "sim/engine.hpp"

namespace bbsim::flow {

/// Invoked at the simulated instant a flow's last byte arrives.
using CompletionHandler = std::function<void()>;

class FlowManager {
 public:
  /// The engine must outlive the manager.
  explicit FlowManager(sim::Engine& engine) : engine_(engine) {}
  FlowManager(const FlowManager&) = delete;
  FlowManager& operator=(const FlowManager&) = delete;

  /// Expose the underlying network for resource creation and inspection.
  Network& network() { return net_; }
  const Network& network() const { return net_; }

  /// Start a flow; `on_complete` fires when all bytes have moved.
  /// A zero-volume flow completes at the current time (via a scheduled
  /// zero-delay event, preserving run-to-completion semantics).
  FlowId start(FlowSpec spec, CompletionHandler on_complete);

  /// Abort an in-progress flow; its handler is never called.
  /// Returns false if the flow already completed.
  bool abort(FlowId id);

  /// Change a resource capacity at the current simulated time (interference
  /// injection); progress is settled first, then rates are recomputed.
  void set_capacity(ResourceId id, double capacity);

  /// Current transfer rate of an active flow (bytes/sec).
  double current_rate(FlowId id) const { return net_.flow(id).rate; }

  /// Number of in-flight flows.
  std::size_t active_count() const { return net_.flow_count(); }

  /// Re-runs the solver invariant checks (test hook).
  void check_invariants() const { net_.check_invariants(); }

  /// Publish flow metrics: forwards to the network (solver counters) and
  /// samples per-resource utilization (`flow.util.<resource>`) at every
  /// settle point, weighted by the interval length so the series' mean is
  /// the time-weighted utilization. nullptr disables publishing.
  void set_metrics(stats::MetricsRegistry* metrics);

 private:
  sim::Engine& engine_;
  Network net_;
  std::unordered_map<FlowId, CompletionHandler> handlers_;
  sim::EventId wake_event_ = 0;
  bool wake_scheduled_ = false;
  sim::Time last_settle_ = 0.0;
  stats::MetricsRegistry* metrics_ = nullptr;
  /// Cached per-resource utilization series (index = ResourceId); refreshed
  /// lazily when resources were added since the last settle.
  std::vector<stats::TimeSeries*> util_series_;

  /// Apply elapsed progress since the last settle point.
  void settle();
  /// Re-solve rates and (re)schedule the next completion event.
  void reschedule();
  /// Fired at the next completion instant.
  void on_wake();
};

}  // namespace bbsim::flow
