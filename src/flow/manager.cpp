#include "flow/manager.hpp"

#include <algorithm>
#include <cmath>

namespace bbsim::flow {

namespace {
/// A flow counts as finished when its residual is this small. Progress is
/// accumulated in doubles, so a volume-relative component is required: a
/// multi-MB transfer legitimately ends with an O(1e-6)-byte residue, and a
/// residue that small at multi-GB/s rates yields a completion horizon far
/// below the clock's representable resolution (the wake-up would not
/// advance time at all -- an infinite loop).
double completion_tolerance(const FlowState& st) {
  return 1e-6 + 1e-9 * st.spec.volume;
}
}  // namespace

FlowId FlowManager::start(FlowSpec spec, CompletionHandler on_complete) {
  settle();
  const FlowId id = net_.add_flow(std::move(spec));
  handlers_.emplace(id, std::move(on_complete));
  reschedule();
  return id;
}

bool FlowManager::abort(FlowId id) {
  if (!net_.has_flow(id)) return false;
  settle();
  net_.remove_flow(id);
  handlers_.erase(id);
  reschedule();
  return true;
}

void FlowManager::set_capacity(ResourceId id, double capacity) {
  settle();
  net_.set_capacity(id, capacity);
  reschedule();
}

void FlowManager::set_metrics(stats::MetricsRegistry* metrics) {
  metrics_ = metrics;
  util_series_.clear();
  net_.set_metrics(metrics);
}

void FlowManager::settle() {
  const sim::Time now = engine_.now();
  const double dt = now - last_settle_;
  last_settle_ = now;
  if (dt <= 0.0) return;

  // Per-resource accounting: accumulate bytes and busy time while flows ran.
  std::vector<double> res_bytes(net_.resource_count(), 0.0);
  std::vector<bool> res_busy(net_.resource_count(), false);

  for (const FlowId id : net_.flow_ids()) {
    const FlowState& st = net_.flow(id);
    const double rate = (st.rate == kUnlimited) ? 0.0 : st.rate;
    const double moved = std::min(st.remaining, rate * dt);
    if (moved > 0.0) {
      for (const ResourceId r : st.spec.path) {
        res_bytes[r] += moved;
        res_busy[r] = true;
      }
      net_.consume(id, moved);
    } else if (rate > 0.0 || st.rate == kUnlimited) {
      for (const ResourceId r : st.spec.path) res_busy[r] = true;
    }
  }
  for (ResourceId r = 0; r < net_.resource_count(); ++r) {
    net_.resource(r).bytes_served += res_bytes[r];
    if (res_busy[r]) net_.resource(r).busy_time += dt;
  }

  if (metrics_ != nullptr) {
    if (util_series_.size() != net_.resource_count()) {
      util_series_.resize(net_.resource_count(), nullptr);
      for (ResourceId r = 0; r < net_.resource_count(); ++r) {
        util_series_[r] = &metrics_->series("flow.util." + net_.resource(r).name);
      }
    }
    for (ResourceId r = 0; r < net_.resource_count(); ++r) {
      const double cap = net_.resource(r).capacity;
      if (cap <= 0.0 || cap == kUnlimited) continue;
      util_series_[r]->sample(now, res_bytes[r] / (cap * dt), dt);
    }
  }
}

void FlowManager::reschedule() {
  if (wake_scheduled_) {
    engine_.cancel(wake_event_);
    wake_scheduled_ = false;
  }
  if (net_.flow_count() == 0) return;

  net_.solve();

  // Earliest completion among active flows.
  double horizon = kUnlimited;
  for (const FlowId id : net_.flow_ids()) {
    const FlowState& st = net_.flow(id);
    double eta;
    if (st.remaining <= completion_tolerance(st) || st.rate == kUnlimited) {
      eta = 0.0;
    } else if (st.rate <= 0.0) {
      continue;  // starved flow: waits for capacity to free up
    } else {
      eta = st.remaining / st.rate;
    }
    horizon = std::min(horizon, eta);
  }
  if (horizon == kUnlimited) return;  // everything starved (all-zero capacity)
  // Clamp sub-resolution horizons: if now + horizon does not advance the
  // clock, fire now and let the completion tolerance finish those flows.
  if (engine_.now() + horizon == engine_.now()) horizon = 0.0;

  wake_event_ = engine_.schedule_in(horizon, [this] { on_wake(); });
  wake_scheduled_ = true;
}

void FlowManager::on_wake() {
  wake_scheduled_ = false;
  settle();

  // Collect finished flows first, then remove, then invoke callbacks: a
  // callback may start new flows or abort others, so the network must be in
  // a consistent state before user code runs.
  std::vector<FlowId> done;
  for (const FlowId id : net_.flow_ids()) {
    const FlowState& st = net_.flow(id);
    const bool finished =
        st.remaining <= completion_tolerance(st) || st.rate == kUnlimited ||
        // Residual too small to ever advance the clock again.
        (st.rate > 0.0 && engine_.now() + st.remaining / st.rate == engine_.now());
    if (finished) done.push_back(id);
  }

  std::vector<CompletionHandler> callbacks;
  callbacks.reserve(done.size());
  for (const FlowId id : done) {
    net_.remove_flow(id);
    auto it = handlers_.find(id);
    callbacks.push_back(std::move(it->second));
    handlers_.erase(it);
  }

  reschedule();

  for (CompletionHandler& cb : callbacks) {
    if (cb) cb();
  }
}

}  // namespace bbsim::flow
