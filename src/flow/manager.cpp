#include "flow/manager.hpp"

#include <algorithm>
#include <cmath>

#include "trace/profiler.hpp"
#include "trace/timeline.hpp"

namespace bbsim::flow {

namespace {
/// A flow counts as finished when its residual is this small. Progress is
/// accumulated in doubles, so a volume-relative component is required: a
/// multi-MB transfer legitimately ends with an O(1e-6)-byte residue, and a
/// residue that small at multi-GB/s rates yields a completion horizon far
/// below the clock's representable resolution (the wake-up would not
/// advance time at all -- an infinite loop).
double completion_tolerance(const FlowState& st) {
  return 1e-6 + 1e-9 * st.spec.volume;
}
}  // namespace

FlowId FlowManager::start(FlowSpec spec, CompletionHandler on_complete) {
  settle();
  const FlowId id = net_.add_flow(std::move(spec));
  handlers_.emplace(id, std::move(on_complete));
  if (timeline_ != nullptr) {
    const FlowState& st = net_.flow(id);
    timeline_->flow_begin(id, engine_.now(), st.spec.label, st.spec.volume);
  }
  if (transfer_hist_ != nullptr) flow_started_.emplace(id, engine_.now());
  reschedule();
  return id;
}

bool FlowManager::abort(FlowId id) { return cancel(id).has_value(); }

std::optional<double> FlowManager::cancel(FlowId id) {
  if (!net_.has_flow(id)) return std::nullopt;
  // Settle first so the bytes moved between the last event and now land in
  // the per-resource ledger (and in this flow's progress) before removal.
  settle();
  const FlowState& st = net_.flow(id);
  const double moved = std::max(0.0, st.spec.volume - st.remaining);
  net_.remove_flow(id);
  handlers_.erase(id);
  if (timeline_ != nullptr) timeline_->flow_end(id, engine_.now(), false);
  flow_started_.erase(id);
  reschedule();
  return moved;
}

void FlowManager::set_capacity(ResourceId id, double capacity) {
  settle();
  net_.set_capacity(id, capacity);
  reschedule();
}

void FlowManager::set_metrics(stats::MetricsRegistry* metrics) {
  metrics_ = metrics;
  util_series_.clear();
  net_.set_metrics(metrics);
  transfer_hist_ =
      metrics != nullptr ? &metrics->histogram("flow.transfer_seconds") : nullptr;
  if (transfer_hist_ == nullptr) flow_started_.clear();
  for (BandwidthGroup& g : bandwidth_groups_) {
    g.series = metrics != nullptr
                   ? &metrics->series("storage." + g.name + ".achieved_bandwidth")
                   : nullptr;
  }
}

void FlowManager::set_timeline(trace::TimelineRecorder* timeline) {
  timeline_ = timeline;
  for (BandwidthGroup& g : bandwidth_groups_) {
    g.track_ready = timeline_ != nullptr;
    if (timeline_ != nullptr) {
      g.track = timeline_->counter_track("storage." + g.name + ".achieved_bandwidth",
                                         "bytes/s");
    }
  }
}

void FlowManager::set_profiler(trace::Profiler* profiler) {
  solve_profile_ = profiler != nullptr ? profiler->section("flow.solve") : nullptr;
}

void FlowManager::register_bandwidth_group(const std::string& name,
                                           std::vector<ResourceId> resources) {
  BandwidthGroup g;
  g.name = name;
  g.resources = std::move(resources);
  if (metrics_ != nullptr) {
    g.series = &metrics_->series("storage." + name + ".achieved_bandwidth");
  }
  if (timeline_ != nullptr) {
    g.track = timeline_->counter_track("storage." + name + ".achieved_bandwidth",
                                       "bytes/s");
    g.track_ready = true;
  }
  bandwidth_groups_.push_back(std::move(g));
}

void FlowManager::settle() {
  const sim::Time now = engine_.now();
  const double dt = now - last_settle_;
  last_settle_ = now;
  if (dt <= 0.0) return;

  // Per-resource accounting: accumulate bytes and busy time while flows ran.
  // The scratch vectors persist across settles (entries outside touched_
  // stay zero), so the hot path allocates nothing and writes only the
  // resources active flows actually cross.
  if (res_bytes_.size() < net_.resource_count()) {
    res_bytes_.resize(net_.resource_count(), 0.0);
    res_busy_.resize(net_.resource_count(), 0);
  }
  touched_.clear();

  net_.for_each_flow([&](FlowId id, const FlowState& st) {
    const double rate = (st.rate == kUnlimited) ? 0.0 : st.rate;
    const double moved = std::min(st.remaining, rate * dt);
    // res_busy_ doubles as the touched-marker: every branch that writes a
    // resource sets it, and settle() resets it with res_bytes_ below.
    if (moved > 0.0) {
      for (const ResourceId r : st.spec.path) {
        if (res_busy_[r] == 0) touched_.push_back(r);
        res_bytes_[r] += moved;
        res_busy_[r] = 1;
      }
      net_.consume(id, moved);
    } else if (rate > 0.0 || st.rate == kUnlimited) {
      for (const ResourceId r : st.spec.path) {
        if (res_busy_[r] == 0) touched_.push_back(r);
        res_busy_[r] = 1;
      }
    }
  });
  for (const ResourceId r : touched_) {
    net_.resource(r).bytes_served += res_bytes_[r];
    if (res_busy_[r] != 0) net_.resource(r).busy_time += dt;
  }

  if (metrics_ != nullptr) {
    if (util_series_.size() != net_.resource_count()) {
      util_series_.resize(net_.resource_count(), nullptr);
      for (ResourceId r = 0; r < net_.resource_count(); ++r) {
        util_series_[r] = &metrics_->series("flow.util." + net_.resource(r).name);
      }
    }
    // Every finite-capacity resource gets a sample each interval (including
    // zero-utilization ones) so the series' time-weighted mean stays exact.
    for (ResourceId r = 0; r < net_.resource_count(); ++r) {
      const double cap = net_.resource(r).capacity;
      if (cap <= 0.0 || cap == kUnlimited) continue;
      util_series_[r]->sample(now, res_bytes_[r] / (cap * dt), dt);
    }
  }

  // Achieved bandwidth per registered group over this settle interval
  // (bytes actually moved / dt, not the allocated rate): the time-resolved
  // per-storage throughput the paper's Figure 9 plots.
  for (BandwidthGroup& g : bandwidth_groups_) {
    if (g.series == nullptr && !g.track_ready) continue;
    double bytes = 0.0;
    for (const ResourceId r : g.resources) {
      if (r < res_bytes_.size()) bytes += res_bytes_[r];
    }
    const double bandwidth = bytes / dt;
    if (g.series != nullptr) g.series->sample(now, bandwidth, dt);
    if (g.track_ready) timeline_->counter_sample(g.track, now, bandwidth);
  }

  for (const ResourceId r : touched_) {
    res_bytes_[r] = 0.0;
    res_busy_[r] = 0;
  }
}

void FlowManager::reschedule() {
  if (wake_scheduled_) {
    engine_.cancel(wake_event_);
    wake_scheduled_ = false;
  }
  if (net_.flow_count() == 0) return;

  {
    const trace::ScopedTimer timer(solve_profile_);
    net_.solve();
  }
  if (timeline_ != nullptr) {
    // Publish each flow's freshly allocated rate as a change point of its
    // span (flow_rate dedups unchanged rates, so a stable allocation
    // costs one point, not one per solve).
    const sim::Time now = engine_.now();
    net_.for_each_flow([&](FlowId id, const FlowState& st) {
      timeline_->flow_rate(id, now, st.rate);
    });
  }

  // Earliest completion among active flows.
  double horizon = kUnlimited;
  net_.for_each_flow([&horizon](FlowId, const FlowState& st) {
    double eta;
    if (st.remaining <= completion_tolerance(st) || st.rate == kUnlimited) {
      eta = 0.0;
    } else if (st.rate <= 0.0) {
      return;  // starved flow: waits for capacity to free up
    } else {
      eta = st.remaining / st.rate;
    }
    horizon = std::min(horizon, eta);
  });
  if (horizon == kUnlimited) return;  // everything starved (all-zero capacity)
  // Clamp sub-resolution horizons: if now + horizon does not advance the
  // clock, fire now and let the completion tolerance finish those flows.
  // The exact == probes ulp behaviour on purpose; an epsilon would defeat it.
  if (engine_.now() + horizon == engine_.now()) horizon = 0.0;  // NOLINT(bbsim-float-equality)

  wake_event_ = engine_.schedule_in(horizon, [this] { on_wake(); });
  wake_scheduled_ = true;
}

void FlowManager::on_wake() {
  wake_scheduled_ = false;
  settle();

  // Collect finished flows first, then remove, then invoke callbacks: a
  // callback may start new flows or abort others, so the network must be in
  // a consistent state before user code runs.
  done_.clear();
  net_.for_each_flow([this](FlowId id, const FlowState& st) {
    const bool finished =
        st.remaining <= completion_tolerance(st) || st.rate == kUnlimited ||
        // Residual too small to ever advance the clock again (exact == is
        // the point: it asks whether the addition is an ulp no-op).
        (st.rate > 0.0 &&
         engine_.now() + st.remaining / st.rate == engine_.now());  // NOLINT(bbsim-float-equality)
    if (finished) done_.push_back(id);
  });

  std::vector<CompletionHandler> callbacks;
  callbacks.reserve(done_.size());
  for (const FlowId id : done_) {
    net_.remove_flow(id);
    auto it = handlers_.find(id);
    callbacks.push_back(std::move(it->second));
    handlers_.erase(it);
    if (timeline_ != nullptr) timeline_->flow_end(id, engine_.now(), true);
    if (transfer_hist_ != nullptr) {
      const auto started = flow_started_.find(id);
      if (started != flow_started_.end()) {
        transfer_hist_->record(engine_.now() - started->second);
        flow_started_.erase(started);
      }
    }
  }

  reschedule();

  for (CompletionHandler& cb : callbacks) {
    if (cb) cb();
  }
}

}  // namespace bbsim::flow
