// bbsim -- minimal JSON document model, parser and writer (RFC 8259 subset).
//
// No third-party JSON library is available in this environment, so this is
// a self-contained substrate used by the platform and workflow parsers.
// Design follows the STL container conventions (Core Guidelines C.100/C.101):
// Value is a regular, value-semantic type.
//
// Supported: null, true/false, finite numbers, strings with \uXXXX escapes
// (BMP only, surrogate pairs accepted), arrays, objects. Object key order is
// preserved for stable serialisation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace bbsim::json {

class Value;

using Array = std::vector<Value>;

/// An insertion-ordered string->Value map (order preserved on round-trip).
class Object {
 public:
  using Entry = std::pair<std::string, Value>;

  Object() = default;

  bool contains(const std::string& key) const;
  /// Returns the value for `key`; throws NotFoundError when absent.
  const Value& at(const std::string& key) const;
  /// Returns a pointer to the value for `key`, or nullptr when absent.
  const Value* find(const std::string& key) const;
  Value* find(const std::string& key);
  /// Inserts or overwrites.
  void set(const std::string& key, Value value);
  /// Access-or-create, like std::map::operator[].
  Value& operator[](const std::string& key);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }

 private:
  std::vector<Entry> entries_;
  std::map<std::string, std::size_t> index_;
};

enum class Type { Null, Bool, Number, String, ArrayT, ObjectT };

/// A JSON value. Regular type: default-constructs to null, copyable,
/// movable, equality-comparable.
class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::Bool), bool_(b) {}  // NOLINT
  Value(double n) : type_(Type::Number), num_(n) {}  // NOLINT
  Value(int n) : Value(static_cast<double>(n)) {}  // NOLINT
  Value(std::int64_t n) : Value(static_cast<double>(n)) {}  // NOLINT
  Value(std::size_t n) : Value(static_cast<double>(n)) {}  // NOLINT
  Value(const char* s) : type_(Type::String), str_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}  // NOLINT
  Value(Array a);   // NOLINT
  Value(Object o);  // NOLINT

  Value(const Value& other);
  Value(Value&& other) noexcept = default;
  Value& operator=(const Value& other);
  Value& operator=(Value&& other) noexcept = default;
  ~Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::ArrayT; }
  bool is_object() const { return type_ == Type::ObjectT; }

  /// Checked accessors; throw ParseError on type mismatch so parsers can
  /// surface friendly messages for malformed inputs.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Convenience: object member access (throws unless object).
  const Value& at(const std::string& key) const { return as_object().at(key); }
  bool contains(const std::string& key) const {
    return is_object() && as_object().contains(key);
  }

  /// Lenient getters with defaults -- the workhorses of config parsing.
  double get_number(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Serialise. `indent` < 0 yields compact output; >= 0 pretty-prints with
  /// that many spaces per level.
  std::string dump(int indent = -1) const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // unique_ptr keeps sizeof(Value) small and breaks the recursive layout.
  std::unique_ptr<Array> arr_;
  std::unique_ptr<Object> obj_;

  void dump_to(std::string& out, int indent, int depth) const;
};

/// Parse a JSON document; throws util::ParseError with a line/column message.
Value parse(const std::string& text);

/// Parse the contents of a file; throws util::ParseError (also for I/O errors).
Value parse_file(const std::string& path);

/// Write `value` to a file (pretty-printed); throws util::Error on I/O errors.
void write_file(const std::string& path, const Value& value, int indent = 2);

}  // namespace bbsim::json
