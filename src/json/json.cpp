#include "json/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bbsim::json {

using util::NotFoundError;
using util::ParseError;

// ----------------------------------------------------------------- Object

bool Object::contains(const std::string& key) const { return index_.count(key) > 0; }

const Value& Object::at(const std::string& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) throw NotFoundError("JSON key '" + key + "'");
  return entries_[it->second].second;
}

const Value* Object::find(const std::string& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &entries_[it->second].second;
}

Value* Object::find(const std::string& key) {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &entries_[it->second].second;
}

void Object::set(const std::string& key, Value value) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    entries_[it->second].second = std::move(value);
  } else {
    index_[key] = entries_.size();
    entries_.emplace_back(key, std::move(value));
  }
}

Value& Object::operator[](const std::string& key) {
  const auto it = index_.find(key);
  if (it != index_.end()) return entries_[it->second].second;
  index_[key] = entries_.size();
  entries_.emplace_back(key, Value());
  return entries_.back().second;
}

// ------------------------------------------------------------------ Value

Value::Value(Array a) : type_(Type::ArrayT), arr_(std::make_unique<Array>(std::move(a))) {}
Value::Value(Object o) : type_(Type::ObjectT), obj_(std::make_unique<Object>(std::move(o))) {}

Value::Value(const Value& other)
    : type_(other.type_), bool_(other.bool_), num_(other.num_), str_(other.str_) {
  if (other.arr_) arr_ = std::make_unique<Array>(*other.arr_);
  if (other.obj_) obj_ = std::make_unique<Object>(*other.obj_);
}

Value& Value::operator=(const Value& other) {
  if (this == &other) return *this;
  Value tmp(other);
  *this = std::move(tmp);
  return *this;
}

bool Value::as_bool() const {
  if (type_ != Type::Bool) throw ParseError("JSON value is not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) throw ParseError("JSON value is not a number");
  return num_;
}

std::int64_t Value::as_int() const {
  const double n = as_number();
  if (std::fabs(n - std::round(n)) > 1e-9) throw ParseError("JSON number is not an integer");
  return static_cast<std::int64_t>(std::llround(n));
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) throw ParseError("JSON value is not a string");
  return str_;
}

const Array& Value::as_array() const {
  if (type_ != Type::ArrayT) throw ParseError("JSON value is not an array");
  return *arr_;
}

Array& Value::as_array() {
  if (type_ != Type::ArrayT) throw ParseError("JSON value is not an array");
  return *arr_;
}

const Object& Value::as_object() const {
  if (type_ != Type::ObjectT) throw ParseError("JSON value is not an object");
  return *obj_;
}

Object& Value::as_object() {
  if (type_ != Type::ObjectT) throw ParseError("JSON value is not an object");
  return *obj_;
}

double Value::get_number(const std::string& key, double fallback) const {
  if (!is_object()) return fallback;
  const Value* v = as_object().find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::int64_t Value::get_int(const std::string& key, std::int64_t fallback) const {
  if (!is_object()) return fallback;
  const Value* v = as_object().find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

std::string Value::get_string(const std::string& key, const std::string& fallback) const {
  if (!is_object()) return fallback;
  const Value* v = as_object().find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  if (!is_object()) return fallback;
  const Value* v = as_object().find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Type::Null: return true;
    case Type::Bool: return a.bool_ == b.bool_;
    case Type::Number: return a.num_ == b.num_;
    case Type::String: return a.str_ == b.str_;
    case Type::ArrayT: return *a.arr_ == *b.arr_;
    case Type::ObjectT: {
      if (a.obj_->size() != b.obj_->size()) return false;
      auto ib = b.obj_->begin();
      for (auto ia = a.obj_->begin(); ia != a.obj_->end(); ++ia, ++ib) {
        if (ia->first != ib->first || !(ia->second == ib->second)) return false;
      }
      return true;
    }
  }
  return false;
}

// ----------------------------------------------------------------- writer

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim.
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double n) {
  if (!std::isfinite(n)) throw ParseError("cannot serialise non-finite number");
  if (n == std::round(n) && std::fabs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(std::llround(n)));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Number: dump_number(out, num_); return;
    case Type::String: dump_string(out, str_); return;
    case Type::ArrayT: {
      if (arr_->empty()) { out += "[]"; return; }
      out += '[';
      for (std::size_t i = 0; i < arr_->size(); ++i) {
        if (i) out += indent < 0 ? "," : ",";
        newline_indent(out, indent, depth + 1);
        (*arr_)[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::ObjectT: {
      if (obj_->empty()) { out += "{}"; return; }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : *obj_) {
        if (!first) out += ",";
        first = false;
        newline_indent(out, indent, depth + 1);
        dump_string(out, key);
        out += indent < 0 ? ":" : ": ";
        value.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ----------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; col = 1; } else { ++col; }
    }
    throw ParseError("JSON at line " + std::to_string(line) + ", column " +
                     std::to_string(col) + ": " + msg);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (take() != c) { --pos_; fail(std::string("expected '") + c + "'"); }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') { ++pos_; } else { break; }
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) == 0) { pos_ += n; return true; }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': if (consume_literal("true")) return Value(true); fail("invalid literal");
      case 'f': if (consume_literal("false")) return Value(false); fail("invalid literal");
      case 'n': if (consume_literal("null")) return Value(nullptr); fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') { take(); return Value(std::move(obj)); }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      if (obj.contains(key)) fail("duplicate object key '" + key + "'");
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return Value(std::move(obj));
      if (c != ',') { --pos_; fail("expected ',' or '}' in object"); }
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') { take(); return Value(std::move(arr)); }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return Value(std::move(arr));
      if (c != ',') { --pos_; fail("expected ',' or ']' in array"); }
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else { --pos_; fail("invalid \\u escape"); }
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = parse_hex4();
            if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
              if (take() != '\\' || take() != 'u') { --pos_; fail("unpaired surrogate"); }
              const unsigned lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            append_utf8(out, cp);
            break;
          }
          default: --pos_; fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    if (peek() == '.') {
      take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid fraction");
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    if (peek() == 'e' || peek() == 'E') {
      take();
      if (peek() == '+' || peek() == '-') take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    double parsed = 0.0;
    try {
      parsed = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::out_of_range&) {
      fail("number out of range for double");
    }
    if (!std::isfinite(parsed)) fail("number out of range for double");
    return Value(parsed);
  }
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void write_file(const std::string& path, const Value& value, int indent) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::Error("cannot open file for writing: '" + path + "'");
  out << value.dump(indent) << '\n';
  if (!out) throw util::Error("write failed: '" + path + "'");
}

}  // namespace bbsim::json
