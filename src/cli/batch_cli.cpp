#include "cli/batch_cli.hpp"

#include <cstdio>
#include <string>

#include "batch/payload.hpp"
#include "batch/report.hpp"
#include "resil/fault.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace bbsim::cli {

using util::ConfigError;

std::string batch_usage() {
  return R"(bbsim_batch -- multi-tenant fleet simulation: a job stream through a
two-resource batch scheduler (compute nodes + shared burst buffer)

usage: bbsim_batch (--jobs-file FILE | --gen N) [options]

A job starts only when BOTH its node count and its BB reservation fit.
Policies: fcfs, easy (EASY backfilling), conservative (backfilling with a
reservation per queued job), plan (ordering lookahead). See docs/batch.md.

Stream:
  --jobs-file FILE     load a bbsim.jobs.v1 stream
  --gen N              generate a synthetic stream of N jobs
  --load F             generator: target machine load (default 0.85)
  --arrival KIND       generator: poisson | weibull[:SHAPE] interarrivals
                       (default poisson; weibull default shape 0.6 = bursty)
  --estimate-factor F  generator: estimates up to F x actual (default 3;
                       1 = exact estimates)
  --max-job-nodes N    generator: largest job width (default 16)
  --seed N             generator seed (default 42)

Machine:
  --nodes N            compute nodes (default 32)
  --bb-capacity SIZE   burst-buffer pool, e.g. 6.4TB (default 6.4TB)
  --bb-granule SIZE    BB allocation granule, e.g. 20GiB (default 0 = byte-
                       granular; rounding waste is reported as internal
                       fragmentation)

Scheduling:
  --policy P           fcfs | easy | conservative | plan | all
                       (default easy; all = compare every policy)
  --tau SECONDS        bounded-slowdown runtime floor (default 10)
  --faults SPEC        seeded node-outage process, key=value pairs
                       (node_mtbf / node_shape / node_repair / seed /
                       horizon -- see bbsim_run --help). An outage takes
                       one node down for node_repair seconds; on a full
                       machine the youngest running job is killed and
                       resubmitted. E.g. node_mtbf=3600,node_repair=120

Output:
  --report-out FILE    write the bbsim.batch.v1 report (default: stdout)
  --report-jobs        embed per-job records in the report
  --jobs-out FILE      write the stream that was run (bbsim.jobs.v1) --
                       useful to freeze a generated stream
  --timeline-out FILE  Chrome/Perfetto timeline with per-job wait + run
                       lanes (single policy only)
  --metrics            embed fleet metrics (bbsim.metrics.v1) per run
  --audit              verify the per-job reservation ledger and job
                       lifecycles every event; violations land in the
                       report and make the exit code 1
  --audit-out FILE     also write the audit report(s) to FILE (implies
                       --audit)
  --critpath           decompose each run's makespan along the blocking
                       chain of the last-finishing job into compute /
                       queue-wait / BB-capacity-wait / outage-rework blame
                       and embed it in the report (bbsim.critpath.v1)
  --critpath-out FILE  also write the critical-path report(s) to FILE
                       (requires --critpath)
  --quiet              no summary table on stderr
  --help
)";
}

BatchCliOptions parse_batch_cli(const std::vector<std::string>& args) {
  BatchCliOptions opt;
  std::size_t i = 0;
  auto next_value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) throw ConfigError("missing value for " + flag);
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      opt.help = true;
    } else if (a == "--jobs-file") {
      opt.jobs_path = next_value(a);
    } else if (a == "--gen") {
      const long long n = std::stoll(next_value(a));
      if (n <= 0) throw ConfigError("--gen must be a positive job count");
      opt.gen_count = static_cast<std::size_t>(n);
    } else if (a == "--load") {
      opt.load = std::stod(next_value(a));
    } else if (a == "--arrival") {
      opt.arrival = next_value(a);
    } else if (a == "--estimate-factor") {
      opt.estimate_factor = std::stod(next_value(a));
    } else if (a == "--max-job-nodes") {
      opt.max_job_nodes = std::stoi(next_value(a));
    } else if (a == "--seed") {
      opt.seed = std::stoull(next_value(a));
    } else if (a == "--nodes") {
      opt.nodes = std::stoi(next_value(a));
    } else if (a == "--bb-capacity") {
      opt.bb_capacity = util::parse_size(next_value(a));
    } else if (a == "--bb-granule") {
      opt.bb_granule = util::parse_size(next_value(a));
    } else if (a == "--policy") {
      opt.policy = next_value(a);
    } else if (a == "--tau") {
      opt.tau = std::stod(next_value(a));
    } else if (a == "--faults") {
      opt.faults = next_value(a);
    } else if (a == "--report-out") {
      opt.report_path = next_value(a);
    } else if (a == "--report-jobs") {
      opt.report_jobs = true;
    } else if (a == "--jobs-out") {
      opt.jobs_out = next_value(a);
    } else if (a == "--timeline-out") {
      opt.timeline_path = next_value(a);
    } else if (a == "--metrics") {
      opt.metrics = true;
    } else if (a == "--audit") {
      opt.audit = true;
    } else if (a == "--audit-out") {
      opt.audit_path = next_value(a);
      opt.audit = true;
    } else if (a == "--critpath") {
      opt.critpath = true;
    } else if (a == "--critpath-out") {
      opt.critpath_path = next_value(a);
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else {
      throw ConfigError("unknown argument '" + a + "' (try --help)");
    }
  }
  if (opt.help) return opt;
  if (opt.jobs_path.empty() && opt.gen_count == 0) {
    throw ConfigError("no stream given: use --jobs-file FILE or --gen N");
  }
  if (!opt.jobs_path.empty() && opt.gen_count != 0) {
    throw ConfigError("--jobs-file and --gen are mutually exclusive");
  }
  if (!opt.critpath_path.empty() && !opt.critpath) {
    throw ConfigError("--critpath-out requires --critpath");
  }
  resolve_policies(opt.policy);           // fail fast on a bad --policy value
  (void)resil::FaultSpec::parse(opt.faults);  // and on a bad --faults spec
  return opt;
}

std::vector<batch::Policy> resolve_policies(const std::string& spec) {
  if (spec == "all") {
    return {std::begin(batch::kAllPolicies), std::end(batch::kAllPolicies)};
  }
  return {batch::policy_from_string(spec)};
}

batch::StreamConfig stream_config_from(const BatchCliOptions& options) {
  batch::StreamConfig cfg;
  cfg.job_count = options.gen_count;
  cfg.machine_nodes = options.nodes;
  cfg.machine_bb_bytes = options.bb_capacity;
  cfg.load = options.load;
  cfg.estimate_factor = options.estimate_factor;
  cfg.max_job_nodes = options.max_job_nodes;
  cfg.seed = options.seed;
  // --arrival poisson | weibull | weibull:SHAPE
  std::string kind = options.arrival;
  if (const auto colon = kind.find(':'); colon != std::string::npos) {
    cfg.weibull_shape = std::stod(kind.substr(colon + 1));
    kind = kind.substr(0, colon);
  }
  cfg.arrivals = batch::arrival_process_from_string(kind);
  return cfg;
}

int run_batch_cli(const BatchCliOptions& options) {
  if (options.help) {
    std::fputs(batch_usage().c_str(), stdout);
    return 0;
  }

  batch::MachineSpec machine;
  machine.nodes = options.nodes;
  machine.bb_bytes = options.bb_capacity;
  machine.bb_granule = options.bb_granule;
  if (machine.nodes <= 0) throw ConfigError("--nodes must be positive");
  if (machine.bb_bytes < 0) throw ConfigError("--bb-capacity must be >= 0");
  if (machine.bb_granule < 0) throw ConfigError("--bb-granule must be >= 0");

  batch::JobStream stream;
  if (!options.jobs_path.empty()) {
    stream = batch::load_jobs_file(options.jobs_path);
    batch::validate_stream(stream, machine.nodes, machine.bb_bytes);
  } else {
    stream = batch::make_stream(stream_config_from(options));
  }
  const std::size_t resolved = batch::resolve_payloads(stream);
  if (resolved > 0 && !options.quiet) {
    std::fprintf(stderr, "[batch] resolved %zu workflow payload(s)\n", resolved);
  }
  if (!options.jobs_out.empty()) {
    json::write_file(options.jobs_out, batch::stream_to_json(stream));
    if (!options.quiet) {
      std::fprintf(stderr, "[json] wrote %s\n", options.jobs_out.c_str());
    }
  }

  const std::vector<batch::Policy> policies = resolve_policies(options.policy);
  if (!options.timeline_path.empty() && policies.size() != 1) {
    throw ConfigError("--timeline-out needs a single policy (not --policy all)");
  }

  batch::SchedulerConfig cfg;
  cfg.tau = options.tau;
  cfg.collect_metrics = options.metrics;
  cfg.collect_timeline = !options.timeline_path.empty();
  cfg.audit = options.audit;
  cfg.faults = resil::FaultSpec::parse(options.faults);

  std::vector<batch::FleetResult> runs;
  runs.reserve(policies.size());
  std::size_t violations = 0;
  for (const batch::Policy policy : policies) {
    cfg.policy = policy;
    batch::FleetResult r = batch::run_scheduler(machine, stream, cfg);
    violations += r.audit_violations;
    if (!options.timeline_path.empty() && r.timeline != nullptr) {
      json::write_file(options.timeline_path, r.timeline->to_perfetto());
      if (!options.quiet) {
        std::fprintf(stderr, "[json] wrote %s\n", options.timeline_path.c_str());
      }
      r.timeline.reset();
    }
    runs.push_back(std::move(r));
  }

  if (!options.audit_path.empty()) {
    json::Object audits;
    for (const batch::FleetResult& r : runs) {
      if (!r.audit.is_null()) audits.set(batch::to_string(r.policy), r.audit);
    }
    json::write_file(options.audit_path, json::Value(std::move(audits)));
    if (!options.quiet) {
      std::fprintf(stderr, "[json] wrote %s\n", options.audit_path.c_str());
    }
  }

  if (!options.critpath_path.empty()) {
    json::Object reports;
    for (const batch::FleetResult& r : runs) {
      reports.set(batch::to_string(r.policy), batch::batch_critpath(r));
    }
    json::write_file(options.critpath_path, json::Value(std::move(reports)));
    if (!options.quiet) {
      std::fprintf(stderr, "[json] wrote %s\n", options.critpath_path.c_str());
    }
  }

  const json::Value report =
      batch::batch_report(stream, machine, options.tau, runs,
                          options.report_jobs, options.critpath);
  if (options.report_path.empty()) {
    std::fputs((report.dump(2) + "\n").c_str(), stdout);
  } else {
    json::write_file(options.report_path, report);
    if (!options.quiet) {
      std::fprintf(stderr, "[json] wrote %s\n", options.report_path.c_str());
    }
  }

  if (!options.quiet) {
    std::fprintf(stderr,
                 "%-14s %10s %10s %10s %8s %8s %8s %9s\n", "policy",
                 "makespan", "wait.mean", "bsld.mean", "util", "bb.util",
                 "bb.frag", "backfills");
    for (const batch::FleetResult& r : runs) {
      const batch::FleetSummary s = batch::summarize(r, machine, options.tau);
      std::fprintf(stderr,
                   "%-14s %10.1f %10.1f %10.2f %7.1f%% %7.1f%% %7.1f%% %9zu\n",
                   batch::to_string(r.policy), s.makespan, s.wait_mean,
                   s.bsld_mean, 100.0 * s.node_utilization,
                   100.0 * s.bb_utilization,
                   100.0 * s.bb_internal_fragmentation, s.backfilled_jobs);
    }
    for (const batch::FleetResult& r : runs) {
      if (!r.faults_enabled) continue;
      std::fprintf(stderr,
                   "%-14s outages %zu, resubmits %zu, lost %.1f node-s, "
                   "down %.1f node-s\n",
                   batch::to_string(r.policy), r.node_outages,
                   r.resubmitted_jobs, r.lost_node_seconds,
                   r.down_node_seconds);
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "bbsim_batch: audit FAILED: %zu violation(s)\n",
                 violations);
    return 1;
  }
  return 0;
}

int batch_main_impl(int argc, const char* const* argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    return run_batch_cli(parse_batch_cli(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbsim_batch: %s\n", e.what());
    return 1;
  }
}

}  // namespace bbsim::cli
