#include "cli/runner.hpp"

#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "exec/gantt.hpp"
#include "json/json.hpp"
#include "platform/platform_json.hpp"
#include "platform/presets.hpp"
#include "resil/fault.hpp"
#include "testbed/characterize.hpp"
#include "testbed/testbed.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"
#include "workflow/clustering.hpp"
#include "workflow/describe.hpp"
#include "workflow/dot.hpp"
#include "workflow/genomes.hpp"
#include "workflow/swarp.hpp"
#include "workflow/wfformat.hpp"

namespace bbsim::cli {

platform::PlatformSpec resolve_platform(const CliOptions& options) {
  if (options.testbed_system) {
    testbed::TestbedOptions topt;
    topt.compute_nodes = options.nodes;
    topt.seed = options.seed;
    return testbed::testbed_platform(*options.testbed_system, topt);
  }
  if (options.platform == "cori") {
    platform::PresetOptions popt;
    popt.compute_nodes = options.nodes;
    popt.bb_mode = options.bb_mode;
    return platform::cori_platform(popt);
  }
  if (options.platform == "summit") {
    platform::PresetOptions popt;
    popt.compute_nodes = options.nodes;
    return platform::summit_platform(popt);
  }
  return platform::load_platform(options.platform);
}

wf::Workflow resolve_workflow(const CliOptions& options) {
  if (options.workflow == "swarp") {
    wf::SwarpConfig cfg;
    cfg.pipelines = options.pipelines;
    if (options.cores > 0) cfg.cores_per_task = options.cores;
    return wf::make_swarp(cfg);
  }
  if (options.workflow == "genomes" || options.workflow == "1000genomes") {
    wf::GenomesConfig cfg;
    cfg.chromosomes = options.chromosomes;
    return wf::make_1000genomes(cfg);
  }
  return wf::load_workflow(options.workflow);
}

exec::ExecutionConfig execution_config(const CliOptions& options) {
  exec::ExecutionConfig cfg;
  cfg.placement = make_policy(options.policy);
  cfg.scheduler = options.scheduler;
  cfg.stage_in_mode = options.stage_in;
  cfg.stage_out = options.stage_out;
  cfg.bb_eviction = options.evict;
  cfg.stage_in_width = options.stage_width;
  cfg.collect_metrics = !options.metrics_path.empty();
  cfg.collect_timeline = !options.timeline_path.empty();
  cfg.profile = options.profile;
  cfg.audit = options.audit;
  cfg.critpath = options.critpath;
  cfg.faults = resil::FaultSpec::parse(options.faults);
  cfg.checkpoint = resil::CheckpointSpec::parse(options.checkpoint);
  if (options.cores > 0) cfg.force_cores = options.cores;
  return cfg;
}

namespace {

void write_task_csv(const std::string& path, const exec::Result& result) {
  analysis::Table t({"task", "type", "host", "cores", "t_ready", "t_start",
                     "t_reads_done", "t_compute_done", "t_end", "bytes_read",
                     "bytes_written", "lambda_io"});
  for (const auto& [name, rec] : result.tasks) {
    t.add_row({name, rec.type, std::to_string(rec.host), std::to_string(rec.cores),
               util::format("%.6f", rec.t_ready), util::format("%.6f", rec.t_start),
               util::format("%.6f", rec.t_reads_done),
               util::format("%.6f", rec.t_compute_done),
               util::format("%.6f", rec.t_end), util::format("%.0f", rec.bytes_read),
               util::format("%.0f", rec.bytes_written),
               util::format("%.4f", rec.lambda_io())});
  }
  t.write_csv(path);
}

void print_resil_summary(const exec::Result& result, double baseline) {
  if (result.resil_stats == nullptr) return;
  const resil::RunStats& st = *result.resil_stats;
  std::printf("resilience      %d crash(es), %d kill(s), %d rollback(s), "
              "%d checkpoint(s)\n",
              st.node_crashes, st.tasks_killed, st.rollbacks,
              st.checkpoints_taken);
  std::printf("  wasted        %.1f core-s (lost %.1f + checkpoint %.1f + "
              "rework %.1f)\n",
              st.wasted_core_seconds(), st.lost_core_seconds,
              st.checkpoint_core_seconds, st.rework_core_seconds);
  if (st.checkpoint_bytes_written > 0) {
    std::printf("  checkpoints   wrote %s, drained %s, discarded %s\n",
                util::format_size(st.checkpoint_bytes_written).c_str(),
                util::format_size(st.checkpoint_bytes_drained).c_str(),
                util::format_size(st.checkpoint_bytes_discarded).c_str());
  }
  if (baseline > 0.0) {
    std::printf("  failure-free  %s (inflation %.3fx)\n",
                util::format_time(baseline).c_str(),
                result.makespan / baseline);
  }
}

void print_summary(const exec::Result& result, const CliOptions& options) {
  if (options.quiet) {
    std::printf("%.6f\n", result.makespan);
    return;
  }
  std::printf("makespan        %s\n", util::format_time(result.makespan).c_str());
  if (result.stage_in_duration > 0) {
    std::printf("  stage-in      %s\n",
                util::format_time(result.stage_in_duration).c_str());
  }
  if (result.stage_out_duration > 0) {
    std::printf("  stage-out     %s\n",
                util::format_time(result.stage_out_duration).c_str());
  }
  std::printf("  pipeline span %s\n", util::format_time(result.workflow_span).c_str());
  std::printf("tasks           %zu", result.tasks.size());
  if (result.demoted_writes > 0) {
    std::printf("  (demoted writes: %zu)", result.demoted_writes);
  }
  if (result.skipped_stage_files > 0) {
    std::printf("  (staging skipped: %zu)", result.skipped_stage_files);
  }
  if (result.evicted_files > 0) std::printf("  (evicted: %zu)", result.evicted_files);
  std::printf("\n");
  for (const exec::StorageCounters& s : result.storage) {
    std::printf("storage %-6s served %-10s at %s\n", s.service.c_str(),
                util::format_size(s.bytes_served).c_str(),
                util::format_bandwidth(s.achieved_bandwidth()).c_str());
  }
}

void print_critpath(const exec::Result& result) {
  if (result.critpath.is_null()) return;
  const json::Value& cp = result.critpath;
  std::printf("critical path   %s across %zu segment(s)\n",
              util::format_time(cp.at("path_length").as_number()).c_str(),
              cp.at("path").as_array().size());
  const json::Object& fractions = cp.at("blame_fractions").as_object();
  for (const auto& [key, value] : cp.at("blame").as_object()) {
    const double seconds = value.as_number();
    if (seconds <= 0.0) continue;
    std::printf("  %-16s %10s  (%.1f%%)\n", key.c_str(),
                util::format_time(seconds).c_str(),
                fractions.at(key).as_number() * 100.0);
  }
  for (const json::Value& w : cp.at("what_if").as_array()) {
    if (w.at("scenario").as_string() == "baseline") continue;
    std::printf("  what-if %-22s makespan %10s  (%.3fx speedup)\n",
                w.at("scenario").as_string().c_str(),
                util::format_time(w.at("makespan").as_number()).c_str(),
                w.at("speedup").as_number());
  }
}

void print_profile(const exec::Result& result) {
  if (result.profile.is_null()) return;
  std::printf("profile (wall-clock, nondeterministic):\n");
  for (const json::Value& s : result.profile.at("sections").as_array()) {
    std::printf("  %-14s %8.0f calls  total %.6fs  mean %.9fs  max %.9fs\n",
                s.at("name").as_string().c_str(), s.at("calls").as_number(),
                s.at("total_seconds").as_number(), s.at("mean_seconds").as_number(),
                s.at("max_seconds").as_number());
  }
}

}  // namespace

int run_cli(const CliOptions& options) {
  if (options.help) {
    std::fputs(usage().c_str(), stdout);
    return 0;
  }
  wf::Workflow workflow = resolve_workflow(options);
  if (options.cluster) {
    wf::ClusteringResult clustered = wf::cluster_chains(workflow);
    if (!options.quiet) {
      std::printf("[cluster] merged %zu chains, internalised %zu files\n",
                  clustered.chains_merged, clustered.files_internalised);
    }
    workflow = std::move(clustered.workflow);
  }
  if (options.describe) std::fputs(wf::describe(workflow).c_str(), stdout);
  if (!options.dot_path.empty()) {
    wf::save_dot(options.dot_path, workflow);
    if (!options.quiet) std::printf("[dot] wrote %s\n", options.dot_path.c_str());
  }

  const exec::ExecutionConfig cfg = execution_config(options);

  exec::Result result;
  std::vector<exec::Result> all_results;
  if (options.testbed_system) {
    testbed::TestbedOptions topt;
    topt.compute_nodes = options.nodes;
    topt.seed = options.seed;
    topt.repetitions = options.repetitions;
    const testbed::Testbed tb(*options.testbed_system, topt);
    all_results = tb.run_repetitions(workflow, cfg, /*staged_fraction_hint=*/-1.0,
                                     options.jobs);
    if (!options.quiet && options.repetitions > 1) {
      std::vector<double> makespans;
      for (const auto& r : all_results) makespans.push_back(r.makespan);
      const analysis::Stats s = analysis::describe(makespans);
      std::printf("testbed %s, %d repetitions: makespan %.2f ± %.2f s (cv %.1f%%)\n",
                  to_string(*options.testbed_system), options.repetitions, s.mean,
                  s.stddev, s.cv() * 100.0);
    }
    result = all_results.back();
  } else {
    exec::Simulation sim(resolve_platform(options), workflow, cfg);
    result = sim.run();
    all_results.push_back(result);
  }
  if (options.report) {
    std::fputs(testbed::characterization_report(all_results).c_str(), stdout);
  }

  // Failure-free twin: with faults active, re-run the same configuration
  // with the resil layer disabled to report makespan inflation against the
  // undisturbed schedule.
  double baseline_makespan = 0.0;
  if (cfg.faults.enabled() && !options.testbed_system) {
    exec::ExecutionConfig twin_cfg = cfg;
    twin_cfg.faults = resil::FaultSpec{};
    twin_cfg.checkpoint = resil::CheckpointSpec{};
    twin_cfg.collect_metrics = false;
    twin_cfg.collect_timeline = false;
    twin_cfg.profile = false;
    twin_cfg.audit = false;
    twin_cfg.critpath = false;
    exec::Simulation twin(resolve_platform(options), workflow, twin_cfg);
    baseline_makespan = twin.run().makespan;
  }

  print_summary(result, options);
  if (!options.quiet) print_resil_summary(result, baseline_makespan);
  if (options.gantt) std::fputs(exec::render_gantt(result).c_str(), stdout);
  if (!options.trace_path.empty()) {
    json::Value doc = result.to_json();
    if (baseline_makespan > 0.0 && doc.contains("resil")) {
      // Stamp the twin's makespan into the bbsim.resil.v1 section so the
      // report is self-contained.
      json::Object& res = doc.as_object()["resil"].as_object();
      res.set("baseline_makespan", json::Value(baseline_makespan));
      res.set("makespan_inflation",
              json::Value(result.makespan / baseline_makespan));
    }
    json::write_file(options.trace_path, doc);
    if (!options.quiet) std::printf("[json] wrote %s\n", options.trace_path.c_str());
  }
  if (!options.csv_path.empty()) {
    write_task_csv(options.csv_path, result);
    if (!options.quiet) std::printf("[csv] wrote %s\n", options.csv_path.c_str());
  }
  if (!options.metrics_path.empty()) {
    json::write_file(options.metrics_path, result.metrics);
    if (!options.quiet) {
      std::printf("[metrics] wrote %s\n", options.metrics_path.c_str());
    }
  }
  if (!options.timeline_path.empty()) {
    try {
      json::write_file(options.timeline_path, result.timeline->to_perfetto());
    } catch (const util::Error& e) {
      // Re-raise naming the flag so the failure is actionable from argv.
      throw util::ConfigError(std::string("--timeline-out: ") + e.what());
    }
    if (!options.quiet) {
      std::printf("[timeline] wrote %s\n", options.timeline_path.c_str());
    }
  }
  if (options.profile && !options.quiet) print_profile(result);
  if (options.critpath) {
    if (result.critpath.is_null()) {
      // The build compiled the hooks out (BBSIM_CRITPATH=OFF).
      std::fprintf(stderr,
                   "bbsim_run: --critpath requested but this build has no "
                   "critpath hooks (reconfigure with -DBBSIM_CRITPATH=ON)\n");
      return 1;
    }
    if (!options.quiet) print_critpath(result);
    if (!options.critpath_path.empty()) {
      json::write_file(options.critpath_path, result.critpath);
      if (!options.quiet) {
        std::printf("[critpath] wrote %s\n", options.critpath_path.c_str());
      }
    }
  }
  if (options.audit) {
    if (result.audit.is_null()) {
      // The build compiled the hooks out (BBSIM_AUDIT=OFF).
      std::fprintf(stderr,
                   "bbsim_run: --audit requested but this build has no audit "
                   "hooks (reconfigure with -DBBSIM_AUDIT=ON)\n");
      return 1;
    }
    std::size_t violations = 0;
    for (const exec::Result& r : all_results) violations += r.audit_violations;
    if (!options.audit_path.empty()) {
      json::write_file(options.audit_path, result.audit);
      if (!options.quiet) {
        std::printf("[audit] wrote %s\n", options.audit_path.c_str());
      }
    }
    if (violations > 0) {
      std::fprintf(stderr, "bbsim_run: audit FAILED: %zu invariant violation(s)",
                   violations);
      std::size_t shown = 0;
      for (const exec::Result& r : all_results) {
        if (shown >= 5 || r.audit_violations == 0) continue;
        const json::Array& arr = r.audit.at("violations").as_array();
        for (std::size_t v = 0; v < arr.size() && shown < 5; ++v, ++shown) {
          std::fprintf(stderr, "\n  - [%s] %s",
                       arr[v].at("code").as_string().c_str(),
                       arr[v].at("message").as_string().c_str());
        }
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
    if (!options.quiet) {
      std::printf("[audit] clean: all invariants held (%zu run%s)\n",
                  all_results.size(), all_results.size() == 1 ? "" : "s");
    }
  }
  return 0;
}

int main_impl(int argc, const char* const* argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    return run_cli(parse_cli(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbsim_run: %s\n", e.what());
    return 1;
  }
}

}  // namespace bbsim::cli
