/// \file
/// bbsim::cli -- the bbsim_sweep driver: JSON-spec-driven parallel
/// multi-configuration studies (the campaign shape behind the paper's
/// Section IV-B validation and Section IV-C case-study figures).
///
/// A sweep spec (docs/sweeps.md) names a base configuration and axes whose
/// cross product is executed by sweep::SweepRunner with `--jobs` worker
/// threads, then aggregated into one "bbsim.sweep.v1" JSON report. The
/// report is deterministic: for a given spec, serial and parallel
/// executions serialise byte-identically (host wall times are only
/// embedded with --timings).
#pragma once

#include <string>
#include <vector>

#include "json/json.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace bbsim::cli {

struct SweepCliOptions {
  std::string spec_path;        ///< positional: the sweep spec JSON file
  int jobs = 1;                 ///< worker threads (0 = hardware threads)
  std::string out_path;         ///< report destination ("" = stdout)
  /// Directory for per-run Perfetto timeline JSON files; runs opt in with
  /// "timeline": true in the spec. Requires --jobs 1.
  std::string timeline_dir;
  bool timings = false;         ///< embed per-run host wall times
  bool audit = false;           ///< run the invariant auditor in every run
  bool cancel_on_error = false; ///< skip unstarted runs after a failure
  bool quiet = false;           ///< suppress per-run progress on stderr
  bool help = false;
};

/// Parses argv (argv[0] skipped). Throws util::ConfigError on bad input.
SweepCliOptions parse_sweep_cli(const std::vector<std::string>& args);

/// The --help text of bbsim_sweep.
std::string sweep_usage();

/// Expand `spec` into runs, translate each run's settings into bbsim_run
/// flags, execute them on a SweepRunner and return the outcomes in spec
/// order. The testable core of bbsim_sweep.
std::vector<sweep::RunOutcome> execute_sweep_spec(const sweep::SweepSpec& spec,
                                                  const SweepCliOptions& options);

/// execute_sweep_spec + sweep::sweep_report in one call.
json::Value run_sweep_to_json(const sweep::SweepSpec& spec,
                              const SweepCliOptions& options);

/// Run the whole thing; returns the process exit code (non-zero when any
/// run failed). The report goes to --out or stdout.
int run_sweep_cli(const SweepCliOptions& options);

/// Entry point used by tools/bbsim_sweep_main.cpp.
int sweep_main_impl(int argc, const char* const* argv);

}  // namespace bbsim::cli
