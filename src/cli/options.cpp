#include "cli/options.hpp"

#include "exec/placement.hpp"
#include "resil/fault.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace bbsim::cli {

using util::ConfigError;

std::string usage() {
  return R"(bbsim_run -- simulate a workflow execution on an HPC platform with burst buffers

Platform:
  --platform <cori|summit|FILE.json>   machine model (default: cori)
  --bb-mode <private|striped>          Cori DataWarp mode (default: private)
  --nodes N                            compute nodes for presets (default: 1)

Workflow:
  --workflow <swarp|genomes|FILE.json> workload (default: swarp)
  --pipelines P                        SWarp pipelines (default: 1)
  --chromosomes C                      1000Genomes chromosomes (default: 22)
  --cores N                            override requested cores per task

Execution:
  --policy <SPEC>                      data placement (default: all_bb)
       all_pfs | all_bb | fraction:<0..1> | size:<BYTES> | size_inv:<BYTES>
       | locality | greedy:<BYTES>     (BYTES accepts unit suffixes: 64MB)
  --scheduler <fcfs|critical_path|largest_first|smallest_first>
  --stage-in <task|instant>            staging mode (default: task)
  --stage-width N                      concurrent stage-in transfers (default: 1)
  --stage-out                          drain BB-resident products to the PFS
  --evict                              LRU-evict staged inputs when BB is full
  --cluster                            merge linear task chains before running

Resilience (failure injection + checkpoint/restart, schema bbsim.resil.v1):
  --faults <SPEC>                      seeded fault processes as key=value
                                       pairs: seed, node_mtbf / node_shape /
                                       node_repair, bb_mtbf / bb_shape /
                                       bb_degrade / bb_duration, pfs_mtbf /
                                       pfs_shape / pfs_brownout /
                                       pfs_duration, horizon. Example:
                                       node_mtbf=3600,node_repair=60,seed=7
  --checkpoint <SPEC>                  checkpoint-to-BB with async drain:
                                       interval=<s> or bare "daly"
                                       (Young/Daly tau from node_mtbf), plus
                                       bytes=<B> | fraction=<0..1>,
                                       restart=<s>, min_compute=<s>

Emulation (stochastic "real machine" instead of the plain Table-I model):
  --testbed <cori-private|cori-striped|summit>
  --reps R                             repetitions (default: 1)
  --seed S                             RNG seed (default: 42)
  --jobs N                             worker threads for repetitions
                                       (default: 1; 0 = all hardware threads;
                                       results are identical for any N)

Output:
  --trace FILE.json                    write the full result (records + trace)
  --csv FILE.csv                       write per-task records as CSV
  --dot FILE.dot                       write the workflow DAG as Graphviz
  --metrics-out FILE.json              write runtime metrics (engine/solver
                                       counters, utilization, BB occupancy)
  --timeline-out FILE.json             write a Chrome/Perfetto trace-event
                                       timeline (task phase spans per host
                                       core lane, flow transfer spans, BB
                                       occupancy / bandwidth / queue-depth
                                       counters); load it at ui.perfetto.dev
  --profile                            measure wall-clock time per subsystem
                                       (solver, event dispatch, placement)
                                       and print it; embedded in --trace
                                       output as the only nondeterministic
                                       section
  --audit                              verify simulation invariants during the
                                       run (clock, byte conservation, BB
                                       capacity, max-min fairness, schedule
                                       legality); exit 1 on any violation
  --audit-out FILE.json                write the audit report (requires --audit)
  --critpath                           record the causal event graph, extract
                                       the critical path of the makespan and
                                       print its per-resource blame split
                                       (compute / BB / PFS / waits / rework)
                                       plus what-if sensitivities; embedded
                                       in --trace output as "critpath"
  --critpath-out FILE.json             write the critical-path report
                                       (schema bbsim.critpath.v1; requires
                                       --critpath)
  --gantt                              print an ASCII Gantt chart
  --describe                           print the workflow structure summary
  --report                             print the per-type I/O characterization
  --quiet                              only print the makespan
  --help
)";
}

std::shared_ptr<exec::PlacementPolicy> make_policy(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (kind == "all_pfs") return exec::all_pfs_policy();
  if (kind == "all_bb") return exec::all_bb_policy();
  if (kind == "fraction") {
    if (arg.empty()) throw ConfigError("policy fraction:<0..1> needs a value");
    return std::make_shared<exec::FractionPolicy>(std::stod(arg),
                                                  exec::Tier::BurstBuffer);
  }
  if (kind == "size") {
    if (arg.empty()) throw ConfigError("policy size:<bytes> needs a value");
    return std::make_shared<exec::SizeThresholdPolicy>(util::parse_size(arg));
  }
  if (kind == "size_inv") {
    if (arg.empty()) throw ConfigError("policy size_inv:<bytes> needs a value");
    return std::make_shared<exec::SizeThresholdPolicy>(util::parse_size(arg), true);
  }
  if (kind == "locality") return std::make_shared<exec::LocalityPolicy>();
  if (kind == "greedy") {
    if (arg.empty()) throw ConfigError("policy greedy:<bytes> needs a value");
    return std::make_shared<exec::GreedyBytesPolicy>(util::parse_size(arg));
  }
  throw ConfigError("unknown placement policy '" + spec + "'");
}

namespace {

exec::SchedulerPolicy scheduler_from(const std::string& name) {
  if (name == "fcfs") return exec::SchedulerPolicy::Fcfs;
  if (name == "critical_path") return exec::SchedulerPolicy::CriticalPathFirst;
  if (name == "largest_first") return exec::SchedulerPolicy::LargestFirst;
  if (name == "smallest_first") return exec::SchedulerPolicy::SmallestFirst;
  throw ConfigError("unknown scheduler '" + name + "'");
}

testbed::System system_from(const std::string& name) {
  if (name == "cori-private") return testbed::System::CoriPrivate;
  if (name == "cori-striped") return testbed::System::CoriStriped;
  if (name == "summit") return testbed::System::Summit;
  throw ConfigError("unknown testbed system '" + name + "'");
}

}  // namespace

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions opt;
  std::size_t i = 0;
  auto next_value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) throw ConfigError("missing value for " + flag);
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      opt.help = true;
    } else if (a == "--platform") {
      opt.platform = next_value(a);
    } else if (a == "--bb-mode") {
      opt.bb_mode = platform::bb_mode_from_string(next_value(a));
    } else if (a == "--nodes") {
      opt.nodes = std::stoi(next_value(a));
    } else if (a == "--workflow") {
      opt.workflow = next_value(a);
    } else if (a == "--pipelines") {
      opt.pipelines = std::stoi(next_value(a));
    } else if (a == "--chromosomes") {
      opt.chromosomes = std::stoi(next_value(a));
    } else if (a == "--cores") {
      opt.cores = std::stoi(next_value(a));
    } else if (a == "--policy") {
      opt.policy = next_value(a);
    } else if (a == "--scheduler") {
      opt.scheduler = scheduler_from(next_value(a));
    } else if (a == "--stage-in") {
      const std::string v = next_value(a);
      if (v == "task") opt.stage_in = exec::StageInMode::Task;
      else if (v == "instant") opt.stage_in = exec::StageInMode::Instant;
      else throw ConfigError("unknown stage-in mode '" + v + "'");
    } else if (a == "--stage-width") {
      opt.stage_width = std::stoi(next_value(a));
    } else if (a == "--stage-out") {
      opt.stage_out = true;
    } else if (a == "--evict") {
      opt.evict = true;
    } else if (a == "--cluster") {
      opt.cluster = true;
    } else if (a == "--faults") {
      opt.faults = next_value(a);
    } else if (a == "--checkpoint") {
      opt.checkpoint = next_value(a);
    } else if (a == "--testbed") {
      opt.testbed_system = system_from(next_value(a));
    } else if (a == "--reps") {
      opt.repetitions = std::stoi(next_value(a));
    } else if (a == "--seed") {
      opt.seed = std::stoull(next_value(a));
    } else if (a == "--jobs") {
      opt.jobs = std::stoi(next_value(a));
    } else if (a == "--trace") {
      opt.trace_path = next_value(a);
    } else if (a == "--csv") {
      opt.csv_path = next_value(a);
    } else if (a == "--dot") {
      opt.dot_path = next_value(a);
    } else if (a == "--metrics-out") {
      opt.metrics_path = next_value(a);
    } else if (a == "--timeline-out") {
      opt.timeline_path = next_value(a);
    } else if (a == "--profile") {
      opt.profile = true;
    } else if (a == "--audit") {
      opt.audit = true;
    } else if (a == "--audit-out") {
      opt.audit_path = next_value(a);
    } else if (a == "--critpath") {
      opt.critpath = true;
    } else if (a == "--critpath-out") {
      opt.critpath_path = next_value(a);
    } else if (a == "--gantt") {
      opt.gantt = true;
    } else if (a == "--describe") {
      opt.describe = true;
    } else if (a == "--report") {
      opt.report = true;
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else {
      throw ConfigError("unknown argument '" + a + "' (try --help)");
    }
  }
  if (opt.nodes < 1) throw ConfigError("--nodes must be >= 1");
  if (opt.stage_width < 1) throw ConfigError("--stage-width must be >= 1");
  if (opt.pipelines < 1) throw ConfigError("--pipelines must be >= 1");
  if (opt.repetitions < 1) throw ConfigError("--reps must be >= 1");
  if (opt.jobs < 0) throw ConfigError("--jobs must be >= 0 (0 = all hardware threads)");
  if (!opt.critpath_path.empty() && !opt.critpath) {
    throw ConfigError("--critpath-out requires --critpath");
  }
  if (!opt.audit_path.empty() && !opt.audit) {
    throw ConfigError("--audit-out requires --audit");
  }
  (void)make_policy(opt.policy);  // validate early
  (void)resil::FaultSpec::parse(opt.faults);
  (void)resil::CheckpointSpec::parse(opt.checkpoint);
  return opt;
}

}  // namespace bbsim::cli
