/// \file
/// bbsim::cli -- the bbsim_batch driver (library side, testable): runs a
/// job stream -- loaded from a bbsim.jobs.v1 file or generated
/// synthetically -- through one or all batch scheduling policies on a
/// two-resource machine (nodes + burst buffer) and reports the fleet
/// metrics (bbsim.batch.v1). See docs/batch.md for the worked example.
#pragma once

#include <string>
#include <vector>

#include "batch/generator.hpp"
#include "batch/scheduler.hpp"

namespace bbsim::cli {

struct BatchCliOptions {
  // Stream selection: a bbsim.jobs.v1 file xor a synthetic stream.
  std::string jobs_path;       ///< --jobs-file FILE
  std::size_t gen_count = 0;   ///< --gen N (0 = not requested)

  // Generator knobs (only meaningful with --gen).
  double load = 0.85;               ///< --load F
  std::string arrival = "poisson";  ///< --arrival poisson|weibull[:SHAPE]
  double weibull_shape = 0.6;
  double estimate_factor = 3.0;     ///< --estimate-factor F (1 = exact)
  int max_job_nodes = 16;           ///< --max-job-nodes N
  unsigned long long seed = 42;     ///< --seed N

  // The machine.
  int nodes = 32;                ///< --nodes N
  double bb_capacity = 6.4e12;   ///< --bb-capacity SIZE
  double bb_granule = 0.0;       ///< --bb-granule SIZE (0 = byte-granular)

  // Scheduling.
  std::string policy = "easy";   ///< --policy fcfs|easy|conservative|plan|all
  double tau = 10.0;             ///< --tau SECONDS (bounded-slowdown floor)
  /// --faults SPEC: seeded node-outage process (node_mtbf / node_shape /
  /// node_repair / seed / horizon keys of the resil spec). Empty = off,
  /// keeping results bitwise-identical to a faultless build.
  std::string faults;

  // Outputs.
  std::string report_path;    ///< --report-out FILE (bbsim.batch.v1)
  bool report_jobs = false;   ///< --report-jobs (embed per-job records)
  std::string jobs_out;       ///< --jobs-out FILE (dump the stream used)
  std::string timeline_path;  ///< --timeline-out FILE (single policy only)
  bool metrics = false;       ///< --metrics (embed bbsim.metrics.v1 per run)
  bool audit = false;         ///< --audit (reservation ledger + lifecycle)
  std::string audit_path;     ///< --audit-out FILE (implies --audit)
  bool critpath = false;      ///< --critpath (embed blame split per run)
  std::string critpath_path;  ///< --critpath-out FILE (requires --critpath)
  bool quiet = false;
  bool help = false;
};

/// Parses argv (argv[0] skipped). Throws util::ConfigError on bad input.
BatchCliOptions parse_batch_cli(const std::vector<std::string>& args);

/// The --help text.
std::string batch_usage();

/// The policies a --policy value selects ("all" = every implemented one).
std::vector<batch::Policy> resolve_policies(const std::string& spec);

/// Build the generator config the options describe.
batch::StreamConfig stream_config_from(const BatchCliOptions& options);

/// Run everything; returns the process exit code (1 on audit violations).
int run_batch_cli(const BatchCliOptions& options);

/// Entry point used by tools/bbsim_batch_main.cpp.
int batch_main_impl(int argc, const char* const* argv);

}  // namespace bbsim::cli
