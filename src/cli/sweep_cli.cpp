#include "cli/sweep_cli.hpp"

#include <cstdio>
#include <filesystem>
#include <set>

#include "batch/payload.hpp"
#include "batch/report.hpp"
#include "cli/batch_cli.hpp"
#include "cli/runner.hpp"
#include "exec/placement.hpp"
#include "sweep/report.hpp"
#include "testbed/testbed.hpp"
#include "util/error.hpp"
#include "workflow/clustering.hpp"

namespace bbsim::cli {

using util::ConfigError;

std::string sweep_usage() {
  return R"(bbsim_sweep -- run a multi-configuration study in parallel from a JSON spec

usage: bbsim_sweep SPEC.json [options]

The spec names a base configuration and axes of bbsim_run flag values; the
cross product (x repetitions) is executed concurrently and aggregated into
one deterministic JSON report (schema bbsim.sweep.v1). See docs/sweeps.md.

Options:
  --jobs N           worker threads (default: 1 = serial; 0 = all hardware
                     threads). Results are identical for any N.
  --out FILE.json    write the report to FILE (default: stdout)
  --timeline-dir DIR write one Chrome/Perfetto timeline JSON per run that
                     sets "timeline": true in the spec (file name = the
                     sanitised run name). Requires --jobs 1: timelines are
                     a deep-dive tool, not a campaign-scale output.
  --timings          embed per-run host wall times in the report (makes the
                     report nondeterministic; off by default)
  --audit            verify simulation invariants in every run; per-run
                     violation counts land in the report and any violation
                     makes the sweep exit non-zero (a spec can also opt
                     single runs in with "audit": true)
  --cancel-on-error  skip runs that have not started once one run fails
                     (default: keep going and report every failure)
  --quiet            no per-run progress lines on stderr
  --help
)";
}

SweepCliOptions parse_sweep_cli(const std::vector<std::string>& args) {
  SweepCliOptions opt;
  std::size_t i = 0;
  auto next_value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) throw ConfigError("missing value for " + flag);
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      opt.help = true;
    } else if (a == "--jobs") {
      opt.jobs = std::stoi(next_value(a));
    } else if (a == "--out") {
      opt.out_path = next_value(a);
    } else if (a == "--timeline-dir") {
      opt.timeline_dir = next_value(a);
    } else if (a == "--timings") {
      opt.timings = true;
    } else if (a == "--audit") {
      opt.audit = true;
    } else if (a == "--cancel-on-error") {
      opt.cancel_on_error = true;
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      throw ConfigError("unknown argument '" + a + "' (try --help)");
    } else if (opt.spec_path.empty()) {
      opt.spec_path = a;
    } else {
      throw ConfigError("more than one spec file given ('" + opt.spec_path +
                        "' and '" + a + "')");
    }
  }
  if (opt.jobs < 0) throw ConfigError("--jobs must be >= 0 (0 = all hardware threads)");
  if (!opt.timeline_dir.empty() && opt.jobs != 1) {
    throw ConfigError("--timeline-dir requires --jobs 1");
  }
  if (!opt.help && opt.spec_path.empty()) {
    throw ConfigError("no sweep spec given (usage: bbsim_sweep SPEC.json)");
  }
  return opt;
}

namespace {

/// Flags whose effects make no sense per sweep run (file outputs would
/// collide across runs; reps/jobs belong to the sweep itself).
const std::set<std::string>& forbidden_keys() {
  static const std::set<std::string> keys = {
      "trace", "csv",   "dot",    "metrics-out", "audit-out", "gantt",
      "describe", "report", "quiet", "help",  "jobs",        "reps",
      "timeline-out", "profile", "critpath-out"};
  return keys;
}

/// Run names embed '=', ',', ':' and '#'; keep [A-Za-z0-9._-] for file names.
std::string sanitise_run_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    if (!keep) c = '_';
  }
  return out;
}

/// True when this run's settings opt into timeline recording
/// ("timeline": true in the spec's base or on an axis).
bool wants_timeline(const json::Object& settings) {
  const json::Value* flag = settings.find("timeline");
  return flag != nullptr && flag->is_bool() && flag->as_bool();
}

/// Translate one expanded run's settings into a bbsim_run argv and parse
/// it with parse_cli -- the sweep-spec schema *is* the bbsim_run flag set.
CliOptions options_from_settings(const json::Object& settings) {
  std::vector<std::string> argv;
  for (const auto& [key, value] : settings) {
    if (key == "metrics") continue;   // sweep-level switch, handled below
    if (key == "timeline") continue;  // per-run switch, handled by the caller
    if (forbidden_keys().count(key) > 0) {
      throw ConfigError("sweep spec: '" + key + "' is not allowed inside a sweep" +
                        (key == "reps" ? " (use top-level \"repetitions\")" : ""));
    }
    if (value.is_bool()) {
      if (value.as_bool()) argv.push_back("--" + key);
    } else {
      argv.push_back("--" + key);
      argv.push_back(sweep::settings_value_to_string(value));
    }
  }
  return parse_cli(argv);
}

/// True when this run dispatches to the batch fleet simulator instead of a
/// single-workflow bbsim_run ("tool": "batch" in the spec's base or on an
/// axis). Only "batch" is recognised; other values are an error.
bool is_batch_run(const json::Object& settings) {
  const json::Value* tool = settings.find("tool");
  if (tool == nullptr) return false;
  if (!tool->is_string() || tool->as_string() != "batch") {
    throw ConfigError("sweep spec: unknown \"tool\" value " + tool->dump() +
                      " (only \"batch\" is supported)");
  }
  return true;
}

/// Per-run file outputs collide across a sweep, exactly as for bbsim_run.
const std::set<std::string>& batch_forbidden_keys() {
  static const std::set<std::string> keys = {"report-out",   "report-jobs",
                                             "jobs-out",     "timeline-out",
                                             "audit-out",    "critpath-out",
                                             "quiet",        "help"};
  return keys;
}

/// Translate one batch run's settings into a bbsim_batch argv and parse it
/// with parse_batch_cli -- the batch sweep schema *is* the bbsim_batch flag
/// set, minus the per-run file outputs.
BatchCliOptions batch_options_from_settings(const json::Object& settings) {
  std::vector<std::string> argv;
  for (const auto& [key, value] : settings) {
    if (key == "tool") continue;      // the dispatch switch itself
    if (key == "metrics") continue;   // sweep-level switch, handled below
    if (key == "timeline") continue;  // per-run switch, handled by the caller
    if (batch_forbidden_keys().count(key) > 0) {
      throw ConfigError("sweep spec: '" + key +
                        "' is not allowed inside a batch sweep");
    }
    if (value.is_bool()) {
      if (value.as_bool()) argv.push_back("--" + key);
    } else {
      argv.push_back("--" + key);
      argv.push_back(sweep::settings_value_to_string(value));
    }
  }
  return parse_batch_cli(argv);
}

/// Export one finished run's timeline into --timeline-dir (no-op when the
/// run did not record one).
void write_run_timeline(exec::Result& result, const std::string& run_name,
                        const std::string& dir) {
  if (result.timeline == nullptr) return;
  if (dir.empty()) {
    throw ConfigError("sweep spec sets \"timeline\": true but no --timeline-dir "
                      "was given");
  }
  json::write_file(dir + "/" + sanitise_run_name(run_name) + ".json",
                   result.timeline->to_perfetto());
  result.timeline.reset();  // exported; don't hold every timeline in memory
}

/// Execute one "tool": "batch" run: the whole fleet simulation becomes one
/// sweep data point. The fleet makespan lands in Result::makespan and the
/// full single-policy bbsim.batch.v1 report rides in Result::metrics, so
/// the sweep report carries every fleet metric per run.
exec::Result execute_batch_run(const sweep::ExpandedRun& run, bool collect_metrics,
                               bool force_audit, const std::string& timeline_dir) {
  const BatchCliOptions opt = batch_options_from_settings(run.settings);
  const std::vector<batch::Policy> policies = resolve_policies(opt.policy);
  if (policies.size() != 1) {
    throw ConfigError("sweep spec: a batch run needs a single policy -- put "
                      "\"policy\" on an axis instead of using \"all\"");
  }
  batch::MachineSpec machine;
  machine.nodes = opt.nodes;
  machine.bb_bytes = opt.bb_capacity;
  machine.bb_granule = opt.bb_granule;

  batch::JobStream stream;
  if (!opt.jobs_path.empty()) {
    stream = batch::load_jobs_file(opt.jobs_path);
    batch::validate_stream(stream, machine.nodes, machine.bb_bytes);
  } else {
    stream = batch::make_stream(stream_config_from(opt));
  }
  batch::resolve_payloads(stream);

  batch::SchedulerConfig cfg;
  cfg.policy = policies.front();
  cfg.tau = opt.tau;
  cfg.collect_metrics = collect_metrics;
  cfg.collect_timeline = wants_timeline(run.settings);
  cfg.audit = opt.audit || force_audit;

  batch::FleetResult fleet = batch::run_scheduler(machine, stream, cfg);
  exec::Result result;
  result.makespan = fleet.makespan;
  result.workflow_span = fleet.makespan;
  result.audit = fleet.audit;
  result.audit_violations = fleet.audit_violations;
  result.timeline = fleet.timeline;
  result.metrics = batch::batch_report(stream, machine, opt.tau,
                                       {std::move(fleet)}, false);
  write_run_timeline(result, run.name, timeline_dir);
  return result;
}

/// Execute one expanded run on a fully isolated simulation stack.
exec::Result execute_run(const sweep::ExpandedRun& run, bool collect_metrics,
                         bool force_audit, const std::string& timeline_dir) {
  if (is_batch_run(run.settings)) {
    return execute_batch_run(run, collect_metrics, force_audit, timeline_dir);
  }
  const CliOptions opt = options_from_settings(run.settings);
  wf::Workflow workflow = resolve_workflow(opt);
  if (opt.cluster) workflow = wf::cluster_chains(workflow).workflow;

  exec::ExecutionConfig cfg = execution_config(opt);
  cfg.collect_metrics = collect_metrics;
  cfg.collect_trace = false;  // sweeps aggregate records, not event traces
  cfg.collect_timeline = wants_timeline(run.settings);
  if (force_audit) cfg.audit = true;  // a spec's "audit": true is kept either way

  if (opt.testbed_system) {
    // The repetition index salts the emulator's noise streams, exactly as
    // Testbed::run_repetitions does for its serial loop.
    double hint = -1.0;
    if (const auto* fraction =
            dynamic_cast<const exec::FractionPolicy*>(cfg.placement.get())) {
      hint = fraction->input_fraction();
    }
    testbed::TestbedOptions topt;
    topt.compute_nodes = opt.nodes;
    topt.seed = opt.seed;
    topt.repetitions = 1;
    const testbed::Testbed tb(*opt.testbed_system, topt);
    exec::Result result = tb.run_once(
        workflow, cfg, static_cast<unsigned long long>(run.repetition), hint);
    write_run_timeline(result, run.name, timeline_dir);
    return result;
  }
  exec::Simulation sim(resolve_platform(opt), workflow, cfg);
  exec::Result result = sim.run();
  write_run_timeline(result, run.name, timeline_dir);
  return result;
}

}  // namespace

std::vector<sweep::RunOutcome> execute_sweep_spec(const sweep::SweepSpec& spec,
                                                  const SweepCliOptions& options) {
  const bool collect_metrics = [&spec] {
    const json::Value* flag = spec.base.find("metrics");
    return flag != nullptr && flag->is_bool() && flag->as_bool();
  }();

  const std::vector<sweep::ExpandedRun> runs = sweep::expand(spec);
  if (options.timeline_dir.empty()) {
    // Fail before running anything, not on the first finished run.
    for (const sweep::ExpandedRun& run : runs) {
      if (wants_timeline(run.settings)) {
        throw ConfigError("sweep spec sets \"timeline\": true but no "
                          "--timeline-dir was given");
      }
    }
  } else {
    std::filesystem::create_directories(options.timeline_dir);
  }
  std::vector<sweep::RunSpec> specs;
  specs.reserve(runs.size());
  for (const sweep::ExpandedRun& run : runs) {
    specs.push_back(sweep::RunSpec{run.name, [&run, collect_metrics, &options] {
                                     return execute_run(run, collect_metrics,
                                                        options.audit,
                                                        options.timeline_dir);
                                   }});
  }

  sweep::SweepOptions sopt;
  sopt.jobs = options.jobs;
  sopt.cancel_on_error = options.cancel_on_error;
  if (!options.quiet) {
    sopt.on_progress = [](const sweep::Progress& p) {
      std::fprintf(stderr, "[%zu/%zu] %s %s\n", p.finished, p.total, p.name.c_str(),
                   p.ok ? "ok" : "FAILED");
    };
  }
  return sweep::SweepRunner(sopt).run(specs);
}

json::Value run_sweep_to_json(const sweep::SweepSpec& spec,
                              const SweepCliOptions& options) {
  return sweep::sweep_report(spec.name, execute_sweep_spec(spec, options),
                             options.timings);
}

int run_sweep_cli(const SweepCliOptions& options) {
  if (options.help) {
    std::fputs(sweep_usage().c_str(), stdout);
    return 0;
  }
  sweep::SweepSpec spec = sweep::load_sweep_spec(options.spec_path);
  if (spec.name.empty()) spec.name = options.spec_path;  // untitled: use the file
  const std::vector<sweep::RunOutcome> outcomes = execute_sweep_spec(spec, options);
  const json::Value report = sweep::sweep_report(spec.name, outcomes, options.timings);
  if (options.out_path.empty()) {
    std::fputs((report.dump(2) + "\n").c_str(), stdout);
  } else {
    json::write_file(options.out_path, report);
    if (!options.quiet) {
      std::fprintf(stderr, "[json] wrote %s\n", options.out_path.c_str());
    }
  }
  for (const sweep::RunOutcome& o : outcomes) {
    if (!o.ok && !o.skipped) return 1;
  }
  std::size_t violations = 0;
  for (const sweep::RunOutcome& o : outcomes) {
    if (o.ok) violations += o.result.audit_violations;
  }
  if (violations > 0) {
    std::fprintf(stderr, "bbsim_sweep: audit FAILED: %zu invariant violation(s)\n",
                 violations);
    return 1;
  }
  return 0;
}

int sweep_main_impl(int argc, const char* const* argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    return run_sweep_cli(parse_sweep_cli(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbsim_sweep: %s\n", e.what());
    return 1;
  }
}

}  // namespace bbsim::cli
