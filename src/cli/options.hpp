/// \file
/// bbsim::cli -- command-line options for the bbsim_run driver: every
/// platform x workflow x policy x testbed combination from the paper's
/// experiments (Sections III-IV) expressed as flags, including metrics
/// export (--metrics-out) and parallel testbed repetitions (--reps/--jobs).
///
/// Parsing lives in the library (not the binary) so it is unit-testable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "testbed/testbed.hpp"

namespace bbsim::cli {

struct CliOptions {
  // Platform selection: a preset name or a JSON file path.
  std::string platform = "cori";
  platform::BBMode bb_mode = platform::BBMode::Private;
  int nodes = 1;

  // Workflow selection: a generator name or a JSON file path.
  std::string workflow = "swarp";
  int pipelines = 1;
  int chromosomes = 22;
  int cores = 0;  ///< 0 = workflow defaults

  // Execution.
  std::string policy = "all_bb";
  exec::SchedulerPolicy scheduler = exec::SchedulerPolicy::Fcfs;
  exec::StageInMode stage_in = exec::StageInMode::Task;
  int stage_width = 1;
  bool stage_out = false;
  bool evict = false;
  bool cluster = false;  ///< merge linear task chains before running

  // Resilience: raw --faults / --checkpoint specs (validated at parse time,
  // re-parsed into the ExecutionConfig by the runner). Empty = disabled,
  // leaving the engine bitwise-identical to a run without the resil layer.
  std::string faults;
  std::string checkpoint;

  // Emulated "real machine" mode.
  std::optional<testbed::System> testbed_system;
  int repetitions = 1;
  unsigned long long seed = 42;

  // Parallelism: worker threads for independent repetitions / sweep runs
  // (1 = serial, 0 = one per hardware thread). Never changes results.
  int jobs = 1;

  // Outputs.
  std::string trace_path;    ///< result JSON
  std::string csv_path;      ///< per-task CSV
  std::string dot_path;      ///< workflow DOT
  std::string metrics_path;  ///< metrics registry JSON (enables collection)
  std::string timeline_path; ///< Perfetto timeline JSON (enables recording)
  bool profile = false;      ///< wall-clock self-profiling (nondeterministic)
  bool audit = false;        ///< run the invariant auditor alongside the run
  std::string audit_path;    ///< audit report JSON (implies audit)
  bool critpath = false;     ///< critical-path / blame-attribution pass
  std::string critpath_path; ///< critpath report JSON (requires --critpath)
  bool gantt = false;
  bool describe = false;  ///< print the workflow structure summary
  bool report = false;    ///< print the per-type characterization report
  bool quiet = false;
  bool help = false;
};

/// Parses argv (argv[0] is skipped). Throws util::ConfigError on bad input.
CliOptions parse_cli(const std::vector<std::string>& args);

/// The --help text.
std::string usage();

/// Builds a placement policy from its CLI spec, e.g. "fraction:0.5",
/// "size:64MB", "greedy:4GB", "all_pfs". Throws util::ConfigError.
std::shared_ptr<exec::PlacementPolicy> make_policy(const std::string& spec);

}  // namespace bbsim::cli
