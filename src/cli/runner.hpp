/// \file
/// bbsim::cli -- the bbsim_run driver logic (library side, testable):
/// resolves parsed options into a platform + workflow + execution config,
/// runs one simulation or testbed campaign (the single-run building block
/// of the paper's Section III/IV experiments) and writes the requested
/// outputs (trace/CSV/DOT/Gantt/metrics/report).
#pragma once

#include <string>

#include "cli/options.hpp"
#include "exec/trace.hpp"
#include "platform/spec.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::cli {

/// Resolve the platform selection (preset name or JSON path).
platform::PlatformSpec resolve_platform(const CliOptions& options);

/// Resolve the workflow selection (generator name or JSON path).
wf::Workflow resolve_workflow(const CliOptions& options);

/// Build the execution config the options describe (placement policy,
/// scheduler, staging, metrics collection).
exec::ExecutionConfig execution_config(const CliOptions& options);

/// Run the whole thing; returns the process exit code. Output goes to
/// stdout (and to the files requested in options).
int run_cli(const CliOptions& options);

/// Entry point used by tools/bbsim_run_main.cpp: parses, runs, reports
/// errors on stderr.
int main_impl(int argc, const char* const* argv);

}  // namespace bbsim::cli
