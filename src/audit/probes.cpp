#include "audit/probes.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::audit {

namespace {
/// Absolute slack for double accounting comparisons: well below one byte,
/// well above accumulated rounding over millions of operations.
constexpr double kBytesTolerance = 1e-6;

bool close(double a, double b) { return std::abs(a - b) <= kBytesTolerance; }
}  // namespace

// ------------------------------------------------------------ EngineProbe

void EngineProbe::on_scheduled(sim::EventId id, sim::Time now, sim::Time when) {
  BBSIM_AUDIT_CHECK(auditor_, when >= now, Code::kClockRegression, now,
                    "event " + std::to_string(id),
                    util::format("event scheduled at %.9f, before now=%.9f", when, now));
  const bool fresh = live_.insert(id).second;
  BBSIM_AUDIT_CHECK(auditor_, fresh, Code::kEventLifecycle, now,
                    "event " + std::to_string(id),
                    "event id scheduled while still pending (id reuse)");
}

void EngineProbe::on_executed(sim::EventId id, sim::Time when) {
  if (any_executed_) {
    BBSIM_AUDIT_CHECK(auditor_, when >= last_executed_, Code::kClockRegression, when,
                      "event " + std::to_string(id),
                      util::format("event executed at %.9f after the clock reached %.9f",
                                   when, last_executed_));
  }
  any_executed_ = true;
  if (when > last_executed_) last_executed_ = when;
  const bool known = live_.erase(id) > 0;
  BBSIM_AUDIT_CHECK(auditor_, known, Code::kEventLifecycle, when,
                    "event " + std::to_string(id),
                    "executed event was never scheduled (or fired twice)");
}

void EngineProbe::on_cancelled(sim::EventId id) {
  const bool known = live_.erase(id) > 0;
  BBSIM_AUDIT_CHECK(auditor_, known, Code::kEventLifecycle, last_executed_,
                    "event " + std::to_string(id),
                    "cancelled event was never scheduled (or already fired)");
}

// ----------------------------------------------------------- StorageProbe

void StorageProbe::set_expected_size(const std::string& file, double size) {
  expected_size_[file] = size;
}

void StorageProbe::on_occupancy_change(const storage::StorageService& svc,
                                       const std::string& file, double delta,
                                       double used_after) {
  double& shadow = ledger_[&svc];
  shadow += delta;
  BBSIM_AUDIT_CHECK(auditor_, close(shadow, used_after), Code::kAllocationImbalance,
                    time(), svc.name(),
                    util::format("occupancy ledger diverged on '%s': service says %.3f, "
                                 "event deltas sum to %.3f",
                                 file.c_str(), used_after, shadow));
  // Track the service's own accounting from here on; one divergence should
  // produce one violation, not one per subsequent operation.
  shadow = used_after;
  const double cap = svc.total_capacity();
  BBSIM_AUDIT_CHECK(auditor_,
                    cap == platform::kUnlimited || used_after <= cap + kBytesTolerance,
                    Code::kCapacityExceeded, time(), svc.name(),
                    util::format("occupancy %.0f bytes exceeds capacity %.0f", used_after,
                                 cap));
}

void StorageProbe::on_replica_created(const storage::StorageService& svc,
                                      const storage::FileRef& file) {
  ledger_.emplace(&svc, svc.used_bytes());  // observe services even without deltas
  const auto it = expected_size_.find(file.name);
  if (it == expected_size_.end()) return;
  BBSIM_AUDIT_CHECK(auditor_, close(file.size, it->second), Code::kByteConservation,
                    time(), file.name,
                    util::format("replica on '%s' holds %.3f bytes of a %.3f-byte file",
                                 svc.name().c_str(), file.size, it->second));
}

void StorageProbe::on_replica_erased(const storage::StorageService& svc,
                                     const std::string& file, double size) {
  const auto it = expected_size_.find(file);
  if (it == expected_size_.end()) return;
  BBSIM_AUDIT_CHECK(auditor_, close(size, it->second), Code::kByteConservation, time(),
                    file,
                    util::format("erase on '%s' released %.3f bytes of a %.3f-byte file",
                                 svc.name().c_str(), size, it->second));
}

void StorageProbe::finalize() {
  for (const auto& [svc, shadow] : ledger_) {
    BBSIM_AUDIT_CHECK(auditor_, close(shadow, svc->used_bytes()),
                      Code::kAllocationImbalance, kPostRun, svc->name(),
                      util::format("final occupancy %.3f disagrees with the event "
                                   "ledger %.3f",
                                   svc->used_bytes(), shadow));
    BBSIM_AUDIT_CHECK(auditor_, close(svc->used_bytes(), svc->replica_bytes()),
                      Code::kAllocationImbalance, kPostRun, svc->name(),
                      util::format("allocation/release imbalance: %.3f bytes reserved "
                                   "but replicas hold %.3f (leaked reservation?)",
                                   svc->used_bytes(), svc->replica_bytes()));
  }
}

// ------------------------------------------------------------ flow audit

void audit_flow_network(Auditor& auditor, const flow::Network& net, double now,
                        double tolerance) {
  for (const flow::SolveIssue& issue : net.solve_issues(tolerance)) {
    const Code code = issue.kind == flow::SolveIssue::Kind::kOverCapacity
                          ? Code::kFlowOverCapacity
                          : Code::kFlowNotMaxMin;
    auditor.report(code, now, issue.subject, issue.what);
  }
}

}  // namespace bbsim::audit
