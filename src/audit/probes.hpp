/// \file
/// bbsim::audit -- layer probes: the observers that hook the auditor into
/// the engine, the flow solver and the storage services.
///
/// Each probe implements one layer's observer interface and translates what
/// it sees into Auditor violations:
///
///   EngineProbe   event-clock monotonicity and event lifecycle legality
///                 (an executed event must have been scheduled, must not
///                 fire twice, and must not run before its predecessor);
///   StorageProbe  byte conservation per file (every replica's size must
///                 match the workflow's declared file size), capacity
///                 discipline (occupancy never above capacity) and
///                 allocation/release balance (a shadow ledger re-derives
///                 occupancy from the event stream and must agree with the
///                 service's own accounting, exactly at end of run);
///   audit_flow_network  the max-min certificate for one converged solve
///                 (wired as Network's post-solve hook).
///
/// Probes are passive: they never mutate the observed layer and never
/// throw; violations are recorded so an audited run completes and reports
/// everything at once. exec::Simulation owns the wiring (ExecutionConfig::
/// audit) because the probes must outlive the run they observe.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "audit/auditor.hpp"
#include "flow/network.hpp"
#include "sim/engine.hpp"
#include "storage/service.hpp"

namespace bbsim::audit {

/// Verifies event-clock monotonicity and activity lifecycle legality.
class EngineProbe final : public sim::EngineObserver {
 public:
  explicit EngineProbe(Auditor& auditor) : auditor_(auditor) {}

  void on_scheduled(sim::EventId id, sim::Time now, sim::Time when) override;
  void on_executed(sim::EventId id, sim::Time when) override;
  void on_cancelled(sim::EventId id) override;

  std::size_t live_events() const { return live_.size(); }

 private:
  Auditor& auditor_;
  double last_executed_ = 0.0;
  bool any_executed_ = false;
  std::unordered_set<sim::EventId> live_;  ///< scheduled, not yet fired/cancelled
};

/// Verifies storage byte conservation, capacity and allocation balance.
class StorageProbe final : public storage::StorageObserver {
 public:
  /// `now` supplies the simulated clock for violation timestamps.
  StorageProbe(Auditor& auditor, std::function<double()> now)
      : auditor_(auditor), now_(std::move(now)) {}

  /// Declare a file's true size (from the workflow); replicas of the file
  /// must match it wherever they land. Files never declared are skipped by
  /// the conservation check.
  void set_expected_size(const std::string& file, double size);

  void on_occupancy_change(const storage::StorageService& svc, const std::string& file,
                           double delta, double used_after) override;
  void on_replica_created(const storage::StorageService& svc,
                          const storage::FileRef& file) override;
  void on_replica_erased(const storage::StorageService& svc, const std::string& file,
                         double size) override;

  /// End-of-run balance: for every observed service, the shadow ledger,
  /// the service's own used_bytes() and the sum of replica sizes must all
  /// agree -- every byte reserved was either released or became a replica.
  void finalize();

 private:
  Auditor& auditor_;
  std::function<double()> now_;
  std::unordered_map<std::string, double> expected_size_;
  /// Shadow occupancy per service, re-derived from the deltas alone.
  std::map<const storage::StorageService*, double> ledger_;
  double time() const { return now_ ? now_() : kPostRun; }
};

/// Certifies one converged max-min allocation: records kFlowOverCapacity /
/// kFlowNotMaxMin for every violated condition of Network::solve_issues().
/// Wire as `net.set_post_solve_hook(...)` with the engine clock for
/// timestamps.
void audit_flow_network(Auditor& auditor, const flow::Network& net, double now,
                        double tolerance = 1e-6);

}  // namespace bbsim::audit
