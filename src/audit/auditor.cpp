#include "audit/auditor.hpp"

namespace bbsim::audit {

const char* to_string(Code code) {
  switch (code) {
    case Code::kClockRegression: return "clock_regression";
    case Code::kEventLifecycle: return "event_lifecycle";
    case Code::kByteConservation: return "byte_conservation";
    case Code::kCapacityExceeded: return "capacity_exceeded";
    case Code::kAllocationImbalance: return "allocation_imbalance";
    case Code::kFlowOverCapacity: return "flow_over_capacity";
    case Code::kFlowNotMaxMin: return "flow_not_max_min";
    case Code::kTaskLifecycle: return "task_lifecycle";
    case Code::kPrecedence: return "precedence";
    case Code::kCoreOversubscription: return "core_oversubscription";
    case Code::kResultInconsistent: return "result_inconsistent";
    case Code::kJobLifecycle: return "job_lifecycle";
    case Code::kReservationImbalance: return "reservation_imbalance";
    case Code::kAttributionMismatch: return "attribution_mismatch";
  }
  return "unknown";
}

Auditor::Auditor(std::size_t max_stored) : max_stored_(max_stored) {}

void Auditor::report(Code code, double time, std::string subject, std::string message) {
  ++total_;
  ++counts_[code];
  if (metrics_ != nullptr) {
    metrics_->counter("audit.violations").add(1.0);
    metrics_->counter(std::string("audit.violations.") + to_string(code)).add(1.0);
  }
  if (stored_.size() < max_stored_) {
    stored_.push_back(Violation{code, time, std::move(subject), std::move(message)});
  }
}

std::size_t Auditor::count(Code code) const {
  const auto it = counts_.find(code);
  return it == counts_.end() ? 0 : it->second;
}

json::Value Auditor::to_json() const {
  json::Object root;
  root.set("schema", "bbsim.audit.v1");
  root.set("clean", clean());
  root.set("total_violations", total_);

  json::Object counts;
  for (const auto& [code, n] : counts_) counts.set(to_string(code), n);
  root.set("counts", json::Value(std::move(counts)));

  json::Array stored;
  for (const Violation& v : stored_) {
    json::Object o;
    o.set("code", to_string(v.code));
    o.set("time", v.time);
    o.set("subject", v.subject);
    o.set("message", v.message);
    stored.push_back(json::Value(std::move(o)));
  }
  root.set("violations", json::Value(std::move(stored)));
  root.set("truncated", stored_.size() < total_);
  return json::Value(std::move(root));
}

void Auditor::set_metrics(stats::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  // Seed the total counter so an audited-and-clean run still exports it.
  metrics_->counter("audit.violations");
  for (const auto& [code, n] : counts_) {
    metrics_->counter(std::string("audit.violations.") + to_string(code))
        .add(static_cast<double>(n));
    metrics_->counter("audit.violations").add(static_cast<double>(n));
  }
}

}  // namespace bbsim::audit
