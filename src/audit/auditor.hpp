/// \file
/// bbsim::audit -- the simulation invariant auditor: a structured collector
/// of runtime invariant violations.
///
/// The paper's claims (validation against Cori/Summit, Figures 10-11) rest
/// on the simulator being trustworthy: the engine must conserve bytes,
/// respect burst-buffer capacities, and the max-min solver must produce
/// fair-share optima. The auditor machine-checks those properties while a
/// simulation runs -- layer probes (probes.hpp) observe the event engine,
/// the flow solver and the storage services and record every violated
/// invariant here instead of aborting, so one audited run reports *all*
/// violations at once.
///
/// Violations carry a stable machine-readable Code, the simulated time of
/// detection, a subject (task/file/resource name) and a human message with
/// file:line context (see BBSIM_AUDIT_CHECK in util/error.hpp). The whole
/// report serialises as deterministic `bbsim.audit.v1` JSON, and per-code
/// counts are exported through the src/stats metrics subsystem when a
/// registry is installed.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "stats/metrics.hpp"

namespace bbsim::audit {

/// Machine-readable violation categories. The string form (to_string) is
/// part of the bbsim.audit.v1 schema -- treat it as a stable identifier.
enum class Code {
  // sim/engine: event-clock and event-lifecycle legality.
  kClockRegression,       ///< an event executed at a time before its predecessor
  kEventLifecycle,        ///< execute/cancel of an unknown or already-fired event
  // storage/*: byte conservation and capacity discipline.
  kByteConservation,      ///< a replica's size diverged from the file's true size
  kCapacityExceeded,      ///< a bounded service's occupancy exceeded its capacity
  kAllocationImbalance,   ///< occupancy accounting diverged from the event ledger
  // flow/network: max-min fairness of converged allocations.
  kFlowOverCapacity,      ///< summed flow rates exceed a resource capacity
  kFlowNotMaxMin,         ///< a flow below its cap crosses no saturated resource
  // exec/*: schedule legality of the finished run.
  kTaskLifecycle,         ///< missing/duplicate record or disordered phase times
  kPrecedence,            ///< a child task started before a parent finished
  kCoreOversubscription,  ///< concurrent tasks exceeded a host's core count
  kResultInconsistent,    ///< aggregate result fields disagree with the records
  // batch/*: multi-tenant scheduler legality (job streams over the machine).
  kJobLifecycle,          ///< a job's submit/start/end times are disordered
  kReservationImbalance,  ///< node/BB reservations diverged from the fleet ledger
  kAttributionMismatch,   ///< critpath blame classes fail to sum to the makespan
};

/// Stable snake_case identifier used in JSON and metrics names.
const char* to_string(Code code);

/// One violated invariant.
struct Violation {
  Code code = Code::kResultInconsistent;
  double time = 0.0;    ///< simulated seconds at detection (-1 = post-run)
  std::string subject;  ///< task/file/resource the violation is about
  std::string message;  ///< human-readable, with file:line context
};

/// Detection time used by post-run checks (no simulated clock anymore).
inline constexpr double kPostRun = -1.0;

/// Collects violations with exact per-code counts and a bounded stored
/// sample (counts stay exact when the buffer truncates). Thread-compatible,
/// not thread-safe: one auditor audits one simulation stack, which is
/// single-threaded by construction (sweep workers each own a private stack).
class Auditor {
 public:
  static constexpr std::size_t kDefaultMaxStored = 256;

  explicit Auditor(std::size_t max_stored = kDefaultMaxStored);

  /// Record one violation (the BBSIM_AUDIT_CHECK sink interface).
  void report(Code code, double time, std::string subject, std::string message);

  /// Total violations recorded (exact, never truncated).
  std::size_t total() const { return total_; }
  /// Violations recorded for one code (exact).
  std::size_t count(Code code) const;
  /// True when no violation has been recorded.
  bool clean() const { return total_ == 0; }

  /// Stored violations, in detection order (at most max_stored).
  const std::vector<Violation>& violations() const { return stored_; }

  /// Deterministic export:
  ///   { "schema": "bbsim.audit.v1",
  ///     "clean": bool, "total_violations": n,
  ///     "counts": {code: n, ...},            // name-sorted, exact
  ///     "violations": [{code,time,subject,message}, ...],  // bounded
  ///     "truncated": bool }
  json::Value to_json() const;

  /// Publish violation counts as metrics: `audit.violations` (total) plus
  /// `audit.violations.<code>` per code seen. nullptr disables publishing.
  void set_metrics(stats::MetricsRegistry* metrics);

 private:
  std::size_t max_stored_;
  std::vector<Violation> stored_;
  std::map<Code, std::size_t> counts_;
  std::size_t total_ = 0;
  stats::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace bbsim::audit
