/// \file
/// bbsim::stats -- runtime metrics: counters, gauges and time-series
/// samplers. The observability substrate behind the kind of measurements
/// the paper's Section III characterization makes (achieved bandwidth,
/// occupancy, contention) -- here applied to the simulator itself.
///
/// Every layer of the simulator (event engine, flow solver, storage
/// services, execution engine) publishes into one MetricsRegistry so a run
/// can report what actually happened at runtime -- solver rounds, queue
/// depths, resource utilization, burst-buffer occupancy -- without bespoke
/// plumbing per experiment. The registry is strictly opt-in: layers hold a
/// nullable pointer and publishing is a no-op until a registry is
/// installed, so the hot paths pay nothing when metrics are off.
///
/// Metric kinds:
///   Counter     monotonically increasing total (events executed, rounds).
///   Gauge       instantaneous value with a high-water mark (queue depth,
///               active flows, BB occupancy).
///   TimeSeries  (time, value) samples with an exact running summary
///               (weighted mean / min / peak) and a bounded sample buffer:
///               when the buffer fills it is decimated 2:1 and the keep
///               stride doubles, so memory stays O(max_samples) while the
///               summary stays exact.
///
/// JSON export (MetricsRegistry::to_json) is deterministic: metrics are
/// keyed by name in a sorted map, so two identical runs serialise
/// byte-identically (golden-file friendly).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace bbsim::stats {

/// Monotonically increasing total.
class Counter {
 public:
  void add(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Instantaneous value with a high-water mark.
class Gauge {
 public:
  void set(double value) {
    value_ = value;
    if (value > peak_) peak_ = value;
  }
  void add(double delta) { set(value_ + delta); }
  double value() const { return value_; }
  double peak() const { return peak_; }

 private:
  double value_ = 0.0;
  double peak_ = 0.0;
};

/// One recorded sample of a time series.
struct Sample {
  double time = 0.0;
  double value = 0.0;
};

/// Summary statistics of a time series (exact, independent of decimation).
struct SeriesSummary {
  std::size_t count = 0;  ///< samples recorded (not retained)
  double mean = 0.0;      ///< weight-averaged value
  double min = 0.0;
  double peak = 0.0;
  double last = 0.0;
};

/// A bounded (time, value) sampler with an exact running summary.
class TimeSeries {
 public:
  static constexpr std::size_t kDefaultMaxSamples = 512;

  explicit TimeSeries(std::size_t max_samples = kDefaultMaxSamples);

  /// Record one sample. `weight` biases the running mean (pass the interval
  /// length to get a time-weighted mean from irregular sampling points);
  /// it does not affect min/peak/last.
  void sample(double time, double value, double weight = 1.0);

  /// Exact summary over every sample ever recorded.
  SeriesSummary summary() const;
  std::size_t count() const { return count_; }

  /// Retained samples (decimated once count() exceeds the buffer bound).
  const std::vector<Sample>& samples() const { return samples_; }
  /// Current keep stride: 1 = every sample retained, 2 = every other, ...
  std::size_t stride() const { return stride_; }

 private:
  std::size_t max_samples_;
  std::size_t stride_ = 1;
  std::size_t since_kept_ = 0;  // samples seen since the last retained one
  std::vector<Sample> samples_;
  // Running summary (never decimated).
  std::size_t count_ = 0;
  double weighted_sum_ = 0.0;
  double weight_total_ = 0.0;
  double min_ = 0.0;
  double peak_ = 0.0;
  double last_ = 0.0;
};

/// A fixed log-scale (base-2) value histogram with an exact count / sum /
/// min / max. Bucket i spans [2^(i - kOffset), 2^(i - kOffset + 1));
/// values at or below the bottom edge (including zero and negatives) land
/// in bucket 0, values beyond the top edge in the last bucket. The bucket
/// layout is compile-time fixed, so the JSON export is deterministic and
/// histograms from different runs are directly comparable.
///
/// Used for distributions where a mean hides the story: solver rounds per
/// solve() call, per-flow transfer durations.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  /// Bucket 0's upper edge is 2^(1 - kOffset) ~ 6e-8; the top bucket
  /// starts at 2^(kBuckets - 1 - kOffset) ~ 1.4e11. Covers sub-microsecond
  /// durations through hundreds-of-gigabyte volumes.
  static constexpr int kOffset = 24;

  void record(double value);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Approximate q-quantile (q in [0, 1]) from the bucket counts. Exact at
  /// the recorded min/max; within a bucket the value is interpolated
  /// linearly between the bucket edges, so the error is bounded by the 2x
  /// bucket width. Returns 0 for an empty histogram.
  double quantile(double q) const;

  /// Index of the bucket `value` falls in.
  static std::size_t bucket_index(double value);
  /// Lower edge of bucket `index` (bucket 0's edge is 0: the underflow
  /// bucket also catches zero and negative values).
  static double bucket_lower_bound(std::size_t index);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, created on first use. References returned by counter() /
/// gauge() / series() / histogram() stay valid for the registry's lifetime
/// (node-based storage), so hot paths can cache them once and skip the
/// name lookup.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  TimeSeries& series(const std::string& name,
                     std::size_t max_samples = TimeSeries::kDefaultMaxSamples);
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Lookup without creating; nullptr when the metric does not exist.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const TimeSeries* find_series(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t series_count() const { return series_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }

  /// Deterministic (name-sorted) export:
  ///   { "schema": "bbsim.metrics.v1",
  ///     "counters": {name: total},
  ///     "gauges":   {name: {"value", "peak"}},
  ///     "series":   {name: {"count","mean","min","peak","last",
  ///                         "stride", "samples": [[t, v], ...]}},
  ///     "histograms": {name: {"count","sum","mean","min","max",
  ///                           "buckets": [[lower_bound, count], ...]}} }
  /// Histogram buckets export only non-empty entries, in ascending edge
  /// order. `include_samples` = false drops the raw sample arrays
  /// (summaries only).
  json::Value to_json(bool include_samples = true) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace bbsim::stats
