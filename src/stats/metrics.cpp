#include "stats/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace bbsim::stats {

std::size_t Histogram::bucket_index(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  const int exp = std::ilogb(value) + kOffset;
  if (exp < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(exp), kBuckets - 1);
}

double Histogram::bucket_lower_bound(std::size_t index) {
  if (index == 0) return 0.0;  // underflow bucket: catches <= 2^(1-kOffset)
  return std::ldexp(1.0, static_cast<int>(index) - kOffset);
}

void Histogram::record(double value) {
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  ++buckets_[bucket_index(value)];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the wanted sample (0-based, continuous) within the sorted data.
  const double rank = q * static_cast<double>(count_ - 1);
  double below = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (in_bucket == 0.0) continue;
    if (below + in_bucket > rank) {
      // Interpolate within the bucket; clamp the edges to the observed
      // min/max so the result never leaves the recorded range.
      const double lo = std::max(bucket_lower_bound(i), min_);
      const double hi = std::min(i + 1 < kBuckets ? bucket_lower_bound(i + 1) : max_, max_);
      const double frac = (rank - below) / in_bucket;
      return lo + (std::max(hi, lo) - lo) * frac;
    }
    below += in_bucket;
  }
  return max_;
}

TimeSeries::TimeSeries(std::size_t max_samples)
    : max_samples_(std::max<std::size_t>(2, max_samples)) {
  samples_.reserve(max_samples_);
}

void TimeSeries::sample(double time, double value, double weight) {
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > peak_) peak_ = value;
  last_ = value;
  ++count_;
  if (weight > 0.0) {
    weighted_sum_ += value * weight;
    weight_total_ += weight;
  }

  // Keep every stride_-th sample; on overflow decimate 2:1 and double the
  // stride, so the buffer always spans the whole run at bounded size.
  if (++since_kept_ < stride_) return;
  since_kept_ = 0;
  if (samples_.size() >= max_samples_) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) samples_[kept++] = samples_[i];
    samples_.resize(kept);
    stride_ *= 2;
  }
  samples_.push_back(Sample{time, value});
}

SeriesSummary TimeSeries::summary() const {
  SeriesSummary s;
  s.count = count_;
  s.mean = weight_total_ > 0.0 ? weighted_sum_ / weight_total_ : 0.0;
  s.min = min_;
  s.peak = peak_;
  s.last = last_;
  return s;
}

TimeSeries& MetricsRegistry::series(const std::string& name, std::size_t max_samples) {
  return series_.try_emplace(name, max_samples).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const TimeSeries* MetricsRegistry::find_series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

json::Value MetricsRegistry::to_json(bool include_samples) const {
  json::Object root;
  root.set("schema", "bbsim.metrics.v1");

  json::Object counters;
  for (const auto& [name, c] : counters_) counters.set(name, c.value());
  root.set("counters", json::Value(std::move(counters)));

  json::Object gauges;
  for (const auto& [name, g] : gauges_) {
    json::Object o;
    o.set("value", g.value());
    o.set("peak", g.peak());
    gauges.set(name, json::Value(std::move(o)));
  }
  root.set("gauges", json::Value(std::move(gauges)));

  json::Object series;
  for (const auto& [name, ts] : series_) {
    const SeriesSummary s = ts.summary();
    json::Object o;
    o.set("count", s.count);
    o.set("mean", s.mean);
    o.set("min", s.min);
    o.set("peak", s.peak);
    o.set("last", s.last);
    o.set("stride", ts.stride());
    if (include_samples) {
      json::Array arr;
      for (const Sample& smp : ts.samples()) {
        json::Array point;
        point.push_back(json::Value(smp.time));
        point.push_back(json::Value(smp.value));
        arr.push_back(json::Value(std::move(point)));
      }
      o.set("samples", json::Value(std::move(arr)));
    }
    series.set(name, json::Value(std::move(o)));
  }
  root.set("series", json::Value(std::move(series)));

  json::Object histograms;
  for (const auto& [name, h] : histograms_) {
    json::Object o;
    o.set("count", h.count());
    o.set("sum", h.sum());
    o.set("mean", h.mean());
    o.set("min", h.min());
    o.set("max", h.max());
    json::Array buckets;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets()[i] == 0) continue;
      json::Array entry;
      entry.push_back(json::Value(Histogram::bucket_lower_bound(i)));
      entry.push_back(json::Value(h.buckets()[i]));
      buckets.push_back(json::Value(std::move(entry)));
    }
    o.set("buckets", json::Value(std::move(buckets)));
    histograms.set(name, json::Value(std::move(o)));
  }
  root.set("histograms", json::Value(std::move(histograms)));
  return json::Value(std::move(root));
}

}  // namespace bbsim::stats
