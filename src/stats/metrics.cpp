#include "stats/metrics.hpp"

#include <algorithm>

namespace bbsim::stats {

TimeSeries::TimeSeries(std::size_t max_samples)
    : max_samples_(std::max<std::size_t>(2, max_samples)) {
  samples_.reserve(max_samples_);
}

void TimeSeries::sample(double time, double value, double weight) {
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > peak_) peak_ = value;
  last_ = value;
  ++count_;
  if (weight > 0.0) {
    weighted_sum_ += value * weight;
    weight_total_ += weight;
  }

  // Keep every stride_-th sample; on overflow decimate 2:1 and double the
  // stride, so the buffer always spans the whole run at bounded size.
  if (++since_kept_ < stride_) return;
  since_kept_ = 0;
  if (samples_.size() >= max_samples_) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) samples_[kept++] = samples_[i];
    samples_.resize(kept);
    stride_ *= 2;
  }
  samples_.push_back(Sample{time, value});
}

SeriesSummary TimeSeries::summary() const {
  SeriesSummary s;
  s.count = count_;
  s.mean = weight_total_ > 0.0 ? weighted_sum_ / weight_total_ : 0.0;
  s.min = min_;
  s.peak = peak_;
  s.last = last_;
  return s;
}

TimeSeries& MetricsRegistry::series(const std::string& name, std::size_t max_samples) {
  return series_.try_emplace(name, max_samples).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const TimeSeries* MetricsRegistry::find_series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

json::Value MetricsRegistry::to_json(bool include_samples) const {
  json::Object root;
  root.set("schema", "bbsim.metrics.v1");

  json::Object counters;
  for (const auto& [name, c] : counters_) counters.set(name, c.value());
  root.set("counters", json::Value(std::move(counters)));

  json::Object gauges;
  for (const auto& [name, g] : gauges_) {
    json::Object o;
    o.set("value", g.value());
    o.set("peak", g.peak());
    gauges.set(name, json::Value(std::move(o)));
  }
  root.set("gauges", json::Value(std::move(gauges)));

  json::Object series;
  for (const auto& [name, ts] : series_) {
    const SeriesSummary s = ts.summary();
    json::Object o;
    o.set("count", s.count);
    o.set("mean", s.mean);
    o.set("min", s.min);
    o.set("peak", s.peak);
    o.set("last", s.last);
    o.set("stride", ts.stride());
    if (include_samples) {
      json::Array arr;
      for (const Sample& smp : ts.samples()) {
        json::Array point;
        point.push_back(json::Value(smp.time));
        point.push_back(json::Value(smp.value));
        arr.push_back(json::Value(std::move(point)));
      }
      o.set("samples", json::Value(std::move(arr)));
    }
    series.set(name, json::Value(std::move(o)));
  }
  root.set("series", json::Value(std::move(series)));
  return json::Value(std::move(root));
}

}  // namespace bbsim::stats
