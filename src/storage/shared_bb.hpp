// bbsim -- the remote-shared burst buffer service (Cori DataWarp).
//
// Two allocation modes (paper Section III-A1):
//   Private: every compute node gets its own namespace, pinned to one BB
//            node; only the creating compute node may read the file back.
//            Cheap metadata (one op per file).
//   Striped: every file is striped over all BB nodes; any compute node may
//            read it; each file operation touches every stripe, so metadata
//            cost scales with the stripe count. Optimised for N:1 access,
//            pathological for the 1:N small-file patterns of workflows.
#pragma once

#include "storage/service.hpp"

namespace bbsim::storage {

class SharedBurstBuffer final : public StorageService {
 public:
  SharedBurstBuffer(platform::Fabric& fabric, std::size_t storage_idx);

  platform::BBMode mode() const { return spec().mode; }

  /// Private-mode namespaces restrict reads to the creating compute node.
  bool readable_from(const std::string& file_name, std::size_t host_idx) const override;

 protected:
  std::vector<SubFlow> route_read(const Replica& rep, const FileRef& file,
                                  std::size_t host_idx) const override;
  std::vector<SubFlow> route_write(const FileRef& file,
                                   std::size_t host_idx) const override;
  int placement_node(const FileRef& file, std::size_t host_idx) const override;
  double metadata_ops_per_file() const override;
};

}  // namespace bbsim::storage
