#include "storage/node_local_bb.hpp"

#include "util/error.hpp"

namespace bbsim::storage {

NodeLocalBurstBuffer::NodeLocalBurstBuffer(platform::Fabric& fabric, std::size_t storage_idx)
    : StorageService(fabric, storage_idx) {
  if (spec().kind != platform::StorageKind::NodeLocalBB) {
    throw util::ConfigError("NodeLocalBurstBuffer bound to non-node-local spec '" +
                            name() + "'");
  }
}

bool NodeLocalBurstBuffer::readable_from(const std::string& file_name,
                                         std::size_t host_idx) const {
  const Replica* rep = replica(file_name);
  return rep != nullptr && static_cast<std::size_t>(rep->node) == host_idx;
}

std::size_t NodeLocalBurstBuffer::holder_host(const std::string& file_name) const {
  const Replica* rep = replica(file_name);
  return rep == nullptr ? npos : static_cast<std::size_t>(rep->node);
}

int NodeLocalBurstBuffer::placement_node(const FileRef&, std::size_t host_idx) const {
  return static_cast<int>(host_idx);  // the writer's own device
}

std::vector<SubFlow> NodeLocalBurstBuffer::route_read(const Replica& rep,
                                                      const FileRef& file,
                                                      std::size_t) const {
  const auto& r = res();
  const std::size_t node = static_cast<std::size_t>(rep.node);
  // Local path: device channel + host interface. No NIC involved.
  return {SubFlow{file.size, {r.disk_read[node], r.link_down[node]}}};
}

std::vector<SubFlow> NodeLocalBurstBuffer::route_write(const FileRef& file,
                                                       std::size_t host_idx) const {
  const auto& r = res();
  return {SubFlow{file.size, {r.link_up[host_idx], r.disk_write[host_idx]}}};
}

}  // namespace bbsim::storage
