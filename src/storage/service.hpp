// bbsim -- storage services: the objects workflow tasks read from / write to.
//
// A StorageService models one deployment from the platform spec (the PFS,
// Cori's shared DataWarp burst buffer, or Summit's node-local NVMe). Each
// I/O operation is planned as:
//
//   fixed latency  ->  metadata ops (flow through the metadata resource)
//                  ->  one or more data sub-flows (max-min shared)
//
// Subclasses decide replica placement (which storage node holds a file),
// access restrictions (private-mode namespaces, node locality) and how data
// sub-flows are routed/striped. The base class owns replica bookkeeping,
// capacity accounting and plan execution.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flow/network.hpp"
#include "platform/fabric.hpp"
#include "sim/engine.hpp"
#include "stats/metrics.hpp"

namespace bbsim::trace {
class TimelineRecorder;
}  // namespace bbsim::trace

namespace bbsim::storage {

/// A file as the storage layer sees it: a name and a size in bytes.
struct FileRef {
  std::string name;
  double size = 0.0;
};

/// Completion callback for asynchronous operations.
using Done = std::function<void()>;

/// Per-operation perturbation injected by the testbed emulator (interference
/// from competing jobs, metadata jitter). Identity by default.
struct IoPerturbation {
  double extra_latency = 0.0;    ///< seconds added to the fixed latency
  double rate_cap_scale = 1.0;   ///< multiplies the per-stream rate cap
};

/// host_idx is the initiating compute node; is_write distinguishes the
/// direction.
using PerturbFn =
    std::function<IoPerturbation(const FileRef&, bool is_write, std::size_t host_idx)>;

/// One data movement of an operation plan.
struct SubFlow {
  double volume = 0.0;
  std::vector<flow::ResourceId> path;
};

/// A fully planned operation, ready to execute on the fabric.
struct IoPlan {
  double latency = 0.0;        ///< fixed delay before any byte moves
  double metadata_ops = 0.0;   ///< ops pushed through metadata_res (0 = skip)
  flow::ResourceId metadata_res = 0;
  std::vector<SubFlow> data;
  double rate_cap = flow::kUnlimited;  ///< per sub-flow ceiling
  /// Timeline annotation for the plan's flows ("read f.fits pfs->host0").
  /// Empty unless the owning service has a timeline installed.
  std::string label;
};

/// An in-flight planned operation (latency event -> metadata flow -> data
/// sub-flows). Returned by the *_cancellable entry points so the resilience
/// layer can kill a crashed host's I/O mid-transfer. All state is engine
/// time; there is no threading.
class IoOp {
 public:
  /// Tear down whatever stage the operation is in: the pending latency
  /// event is cancelled, the metadata flow aborted, and every data sub-flow
  /// cancelled with its partial bytes settled into the flow ledger
  /// (flow::FlowManager::cancel). The completion callback never fires; the
  /// cancel hook (capacity-reservation rollback) fires exactly once.
  /// Returns total data bytes that actually moved (completed sub-flows plus
  /// settled partials). No-op returning moved() when already finished or
  /// cancelled.
  double cancel();

  bool finished() const { return finished_; }
  bool cancelled() const { return cancelled_; }
  /// Data bytes moved so far (full sub-flow volumes at completion; partial
  /// settled bytes after a cancel; not live-updated while flows run).
  double moved() const { return moved_; }

 private:
  friend std::shared_ptr<IoOp> execute_plan_cancellable(platform::Fabric& fabric,
                                                        IoPlan plan, Done done,
                                                        Done on_cancel);
  void finish();

  platform::Fabric* fabric_ = nullptr;
  sim::EventId latency_event_ = 0;
  bool latency_pending_ = false;
  flow::FlowId meta_flow_ = 0;
  bool meta_pending_ = false;
  std::vector<flow::FlowId> data_flows_;
  std::size_t pending_ = 0;
  bool finished_ = false;
  bool cancelled_ = false;
  double moved_ = 0.0;
  Done done_;
  Done on_cancel_;
};

/// Shared handle: the op stays alive while its scheduled event / flow
/// callbacks reference it, so holders may drop the handle freely.
using IoHandle = std::shared_ptr<IoOp>;

/// Execute a plan on the fabric; `done` fires when every sub-flow finished.
void execute_plan(platform::Fabric& fabric, IoPlan plan, Done done);

/// As execute_plan, but returns a handle through which the operation can be
/// cancelled mid-flight. `on_cancel` (may be null) fires once if and only if
/// the op is cancelled before completion -- services use it to roll back
/// capacity reservations. The event/flow sequence is identical to
/// execute_plan (it is the same code path), so uncancelled runs are
/// bitwise-identical either way.
IoHandle execute_plan_cancellable(platform::Fabric& fabric, IoPlan plan, Done done,
                                  Done on_cancel);

class StorageService;

/// Observer of a storage service's capacity accounting and replica
/// lifecycle, for invariant auditing (src/audit installs one when auditing
/// is on). Callbacks fire inline; implementations must not mutate the
/// service. Call sites compile out when BBSIM_AUDIT=OFF.
class StorageObserver {
 public:
  virtual ~StorageObserver() = default;
  /// Occupancy changed by `delta` bytes (reservation or release);
  /// `used_after` is the service's own accounting after the change.
  virtual void on_occupancy_change(const StorageService& svc, const std::string& file,
                                   double delta, double used_after) = 0;
  /// A replica became visible (instant registration, write completion or
  /// fused-transfer completion).
  virtual void on_replica_created(const StorageService& svc, const FileRef& file) = 0;
  /// A replica was dropped, releasing `size` bytes.
  virtual void on_replica_erased(const StorageService& svc, const std::string& file,
                                 double size) = 0;
};

/// Abstract storage service. Construct subclasses via make_service() or
/// StorageSystem (system.hpp).
class StorageService {
 public:
  /// Where a file's bytes live inside this service.
  struct Replica {
    double size = 0.0;
    int node = 0;                  ///< storage node index; -1 = striped over all
    std::size_t creator_host = 0;  ///< compute node that wrote the file
  };

  StorageService(platform::Fabric& fabric, std::size_t storage_idx);
  virtual ~StorageService() = default;
  StorageService(const StorageService&) = delete;
  StorageService& operator=(const StorageService&) = delete;

  const platform::StorageSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  platform::StorageKind kind() const { return spec_.kind; }
  std::size_t storage_index() const { return storage_idx_; }

  // ------------------------------------------------------------- replicas
  bool has_file(const std::string& file_name) const;
  /// nullptr when the file is not stored here.
  const Replica* replica(const std::string& file_name) const;
  /// Instantaneously place a file (initial dataset population at t=0).
  /// Throws ConfigError when capacity would be exceeded.
  void register_file(const FileRef& file, std::size_t host_idx);
  /// Drop a replica (no simulated cost; deletion is metadata-only here).
  void erase_file(const std::string& file_name);
  double used_bytes() const { return used_bytes_; }
  /// High-water mark of used_bytes() over the service's lifetime (includes
  /// in-flight write reservations). Available even when metrics are off;
  /// the batch layer reports it as per-job BB peak occupancy.
  double peak_used_bytes() const { return peak_used_bytes_; }
  /// Sum of all replica sizes. Equals used_bytes() whenever no write is in
  /// flight (writes reserve capacity before their replica appears); the
  /// auditor checks the two agree at end of run (allocation/release
  /// balance).
  double replica_bytes() const;
  std::size_t replica_count() const { return replicas_.size(); }
  /// Names of every file stored here, in name order. A snapshot: safe to
  /// erase_file() while iterating (the resil layer invalidates a crashed
  /// node's replicas this way).
  std::vector<std::string> file_names() const;
  /// Total capacity across storage nodes (kUnlimited for the PFS).
  double total_capacity() const;

  /// May `host_idx` read this file from here? (Private-mode namespaces and
  /// node-local devices restrict access; paper Section III-A.)
  virtual bool readable_from(const std::string& file_name, std::size_t host_idx) const;

  // ----------------------------------------------------------- operations
  /// Asynchronously read `file` into host `host_idx`.
  /// Throws NotFoundError if absent, InvariantError if not readable.
  void read(const FileRef& file, std::size_t host_idx, Done done);

  /// Asynchronously write `file` from host `host_idx`; the replica becomes
  /// visible when `done` fires. Capacity is reserved up front. Overwrites
  /// replace the previous replica.
  void write(const FileRef& file, std::size_t host_idx, Done done);

  /// As read()/write(), returning a handle that can cancel the operation
  /// mid-flight. A cancelled read just stops its flows; a cancelled write
  /// additionally rolls back the up-front capacity reservation (the replica
  /// never appears) and the completion callback never fires. The event/flow
  /// sequence matches read()/write() exactly, so uncancelled runs are
  /// bitwise-identical.
  IoHandle read_cancellable(const FileRef& file, std::size_t host_idx, Done done);
  IoHandle write_cancellable(const FileRef& file, std::size_t host_idx, Done done);

  // Plans exposed so StorageSystem can fuse read+write into one transfer.
  IoPlan plan_read(const FileRef& file, std::size_t host_idx) const;
  IoPlan plan_write(const FileRef& file, std::size_t host_idx) const;

  /// Install the testbed's interference hook (nullptr to clear).
  void set_perturbation(PerturbFn fn) { perturb_ = std::move(fn); }

  /// Publish storage metrics: an occupancy timeline + high-water gauge
  /// (`storage.<name>.occupancy_bytes`) sampled at every capacity change.
  /// nullptr disables publishing (the default).
  void set_metrics(stats::MetricsRegistry* metrics);

  /// Publish an occupancy counter track (`storage.<name>.occupancy_bytes`)
  /// into `timeline` and start labelling plans (IoPlan::label) so the flow
  /// layer can annotate transfer spans. nullptr disables (the default).
  void set_timeline(trace::TimelineRecorder* timeline);
  /// True when plans should carry labels (a timeline is installed).
  bool labelling() const { return timeline_ != nullptr; }

  /// Install a capacity/replica lifecycle observer (nullptr disables; the
  /// default). The observer must outlive the service or be cleared first.
  void set_observer(StorageObserver* observer) { observer_ = observer; }

  /// Bookkeeping for a write planned via plan_write() but executed
  /// externally (fused transfers): begin_external_write reserves capacity
  /// when the data starts moving; complete_external_write registers the
  /// replica when the last byte lands (without reserving again).
  void begin_external_write(const FileRef& file);
  void complete_external_write(const FileRef& file, std::size_t host_idx);
  /// Roll back a reservation made by begin_external_write()/a cancellable
  /// write whose data movement was cancelled before the replica appeared.
  /// Must mirror the reservation exactly: the same delta that was added
  /// (accounting for an overwritten pre-existing replica) is subtracted.
  void abort_write_reservation(const FileRef& file);

 protected:
  /// Subclass hooks: route the data sub-flows. The base class fills in
  /// latency, metadata and caps.
  virtual std::vector<SubFlow> route_read(const Replica& rep, const FileRef& file,
                                          std::size_t host_idx) const = 0;
  virtual std::vector<SubFlow> route_write(const FileRef& file,
                                           std::size_t host_idx) const = 0;
  /// Storage node that would hold a new file written by `host_idx`
  /// (-1 = striped).
  virtual int placement_node(const FileRef& file, std::size_t host_idx) const = 0;
  /// Metadata ops consumed by one operation (striping costs more).
  virtual double metadata_ops_per_file() const { return 1.0; }

  platform::Fabric& fabric_;
  const platform::StorageResources& res() const {
    return fabric_.storage_resources(storage_idx_);
  }

 private:
  std::size_t storage_idx_;
  const platform::StorageSpec& spec_;
  std::map<std::string, Replica> replicas_;
  double used_bytes_ = 0.0;
  double peak_used_bytes_ = 0.0;
  PerturbFn perturb_;
  StorageObserver* observer_ = nullptr;
  stats::Gauge* occupancy_gauge_ = nullptr;
  stats::TimeSeries* occupancy_series_ = nullptr;
  trace::TimelineRecorder* timeline_ = nullptr;
  std::size_t occupancy_track_ = 0;

  /// Create/replace the replica record for `file` and notify the observer.
  void install_replica(const FileRef& file, std::size_t host_idx);

  void apply_perturbation(IoPlan& plan, const FileRef& file, bool is_write,
                          std::size_t host_idx) const;
  void reserve_capacity(const FileRef& file);
  /// Record `used_bytes_` into the occupancy metrics (no-op when disabled).
  void sample_occupancy();
};

}  // namespace bbsim::storage
