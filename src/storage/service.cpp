#include "storage/service.hpp"

#include <memory>

#include "trace/timeline.hpp"
#include "util/error.hpp"

namespace bbsim::storage {

using util::ConfigError;
using util::InvariantError;
using util::NotFoundError;

void IoOp::finish() {
  finished_ = true;
  on_cancel_ = nullptr;
  if (done_) {
    Done cb = std::move(done_);
    done_ = nullptr;
    cb();
  }
}

double IoOp::cancel() {
  if (finished_ || cancelled_) return moved_;
  cancelled_ = true;
  done_ = nullptr;
  if (latency_pending_) {
    fabric_->engine().cancel(latency_event_);
    latency_pending_ = false;
  }
  if (meta_pending_) {
    fabric_->flows().abort(meta_flow_);
    meta_pending_ = false;
  }
  // Flows that already completed were removed from the manager and their
  // volumes credited to moved_; cancel() on them is a nullopt no-op, so the
  // id list never needs pruning on the completion path.
  for (const flow::FlowId id : data_flows_) {
    if (const std::optional<double> partial = fabric_->flows().cancel(id)) {
      moved_ += *partial;
    }
  }
  pending_ = 0;
  if (on_cancel_) {
    Done cb = std::move(on_cancel_);
    on_cancel_ = nullptr;
    cb();
  }
  return moved_;
}

IoHandle execute_plan_cancellable(platform::Fabric& fabric, IoPlan plan, Done done,
                                  Done on_cancel) {
  auto op = std::make_shared<IoOp>();
  op->fabric_ = &fabric;
  op->done_ = std::move(done);
  op->on_cancel_ = std::move(on_cancel);

  const double latency = plan.latency;
  auto start_data = [&fabric, plan = std::move(plan), op]() mutable {
    op->latency_pending_ = false;
    auto launch_subflows = [&fabric, op](const IoPlan& p) {
      op->meta_pending_ = false;
      if (p.data.empty()) {
        op->finish();
        return;
      }
      op->pending_ = p.data.size();
      op->data_flows_.reserve(p.data.size());
      for (const SubFlow& sf : p.data) {
        flow::FlowSpec spec;
        spec.volume = sf.volume;
        spec.path = sf.path;
        spec.rate_cap = p.rate_cap;
        spec.label = p.label;  // empty (free) unless a timeline is recording
        const double volume = sf.volume;
        op->data_flows_.push_back(
            fabric.flows().start(std::move(spec), [op, volume] {
              op->moved_ += volume;
              if (--op->pending_ == 0) op->finish();
            }));
      }
    };

    if (plan.metadata_ops > 0.0) {
      flow::FlowSpec meta;
      meta.volume = plan.metadata_ops;
      meta.path = {plan.metadata_res};
      if (!plan.label.empty()) meta.label = plan.label + " [meta]";
      op->meta_pending_ = true;
      op->meta_flow_ = fabric.flows().start(
          std::move(meta), [launch_subflows, plan]() { launch_subflows(plan); });
    } else {
      launch_subflows(plan);
    }
  };

  // A zero/negative latency still defers by a zero-delay event to keep
  // run-to-completion semantics.
  op->latency_pending_ = true;
  op->latency_event_ =
      fabric.engine().schedule_in(latency > 0.0 ? latency : 0.0, std::move(start_data));
  return op;
}

void execute_plan(platform::Fabric& fabric, IoPlan plan, Done done) {
  // Same machinery, handle discarded: the op lives on inside its own event
  // and flow callbacks until completion.
  (void)execute_plan_cancellable(fabric, std::move(plan), std::move(done), nullptr);
}

StorageService::StorageService(platform::Fabric& fabric, std::size_t storage_idx)
    : fabric_(fabric), storage_idx_(storage_idx), spec_(fabric.spec().storage.at(storage_idx)) {}

bool StorageService::has_file(const std::string& file_name) const {
  return replicas_.count(file_name) > 0;
}

const StorageService::Replica* StorageService::replica(const std::string& file_name) const {
  const auto it = replicas_.find(file_name);
  return it == replicas_.end() ? nullptr : &it->second;
}

double StorageService::total_capacity() const {
  if (spec_.disk.capacity == platform::kUnlimited) return platform::kUnlimited;
  return spec_.disk.capacity * spec_.num_nodes;
}

double StorageService::replica_bytes() const {
  double sum = 0.0;
  for (const auto& [_, rep] : replicas_) sum += rep.size;
  return sum;
}

std::vector<std::string> StorageService::file_names() const {
  std::vector<std::string> names;
  names.reserve(replicas_.size());
  for (const auto& [name, _] : replicas_) names.push_back(name);
  return names;
}

void StorageService::set_metrics(stats::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    occupancy_gauge_ = nullptr;
    occupancy_series_ = nullptr;
    return;
  }
  const std::string base = "storage." + name() + ".occupancy_bytes";
  occupancy_gauge_ = &metrics->gauge(base);
  occupancy_series_ = &metrics->series(base);
  sample_occupancy();  // establish the timeline's starting point
}

void StorageService::set_timeline(trace::TimelineRecorder* timeline) {
  timeline_ = timeline;
  if (timeline_ != nullptr) {
    occupancy_track_ =
        timeline_->counter_track("storage." + name() + ".occupancy_bytes", "bytes");
    sample_occupancy();  // establish the track's starting point
  }
}

void StorageService::sample_occupancy() {
  if (occupancy_gauge_ != nullptr) {
    occupancy_gauge_->set(used_bytes_);
    occupancy_series_->sample(fabric_.engine().now(), used_bytes_);
  }
  if (timeline_ != nullptr) {
    timeline_->counter_sample(occupancy_track_, fabric_.engine().now(), used_bytes_);
  }
}

void StorageService::reserve_capacity(const FileRef& file) {
  BBSIM_ASSERT(file.size >= 0, "negative file size: " + file.name);
  double delta = file.size;
  const auto it = replicas_.find(file.name);
  if (it != replicas_.end()) delta -= it->second.size;  // overwrite frees old bytes
  const double cap = total_capacity();
  if (cap != platform::kUnlimited && used_bytes_ + delta > cap * (1 + 1e-9)) {
    throw ConfigError("storage '" + name() + "' capacity exceeded writing '" + file.name +
                      "' (" + std::to_string(used_bytes_ + delta) + " > " +
                      std::to_string(cap) + " bytes)");
  }
  used_bytes_ += delta;
  if (used_bytes_ > peak_used_bytes_) peak_used_bytes_ = used_bytes_;
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) {
    observer_->on_occupancy_change(*this, file.name, delta, used_bytes_);
  });
  sample_occupancy();
}

void StorageService::install_replica(const FileRef& file, std::size_t host_idx) {
  Replica rep;
  rep.size = file.size;
  rep.node = placement_node(file, host_idx);
  rep.creator_host = host_idx;
  replicas_[file.name] = rep;
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) observer_->on_replica_created(*this, file));
}

void StorageService::register_file(const FileRef& file, std::size_t host_idx) {
  reserve_capacity(file);
  install_replica(file, host_idx);
}

void StorageService::erase_file(const std::string& file_name) {
  const auto it = replicas_.find(file_name);
  if (it == replicas_.end()) return;
  const double size = it->second.size;
  used_bytes_ -= size;
  replicas_.erase(it);
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) {
    observer_->on_occupancy_change(*this, file_name, -size, used_bytes_);
    observer_->on_replica_erased(*this, file_name, size);
  });
  sample_occupancy();
}

bool StorageService::readable_from(const std::string& file_name, std::size_t) const {
  return has_file(file_name);
}

void StorageService::apply_perturbation(IoPlan& plan, const FileRef& file, bool is_write,
                                        std::size_t host_idx) const {
  if (!perturb_) return;
  const IoPerturbation p = perturb_(file, is_write, host_idx);
  plan.latency += p.extra_latency;
  if (p.rate_cap_scale != 1.0 && plan.rate_cap != flow::kUnlimited) {
    plan.rate_cap *= p.rate_cap_scale;
  }
}

IoPlan StorageService::plan_read(const FileRef& file, std::size_t host_idx) const {
  const Replica* rep = replica(file.name);
  if (rep == nullptr) {
    throw NotFoundError("file '" + file.name + "' on storage '" + name() + "'");
  }
  if (!readable_from(file.name, host_idx)) {
    throw InvariantError("file '" + file.name + "' on '" + name() +
                         "' is not readable from host index " + std::to_string(host_idx));
  }
  IoPlan plan;
  plan.latency = spec_.link.latency + spec_.base_latency;
  plan.metadata_ops = metadata_ops_per_file();
  plan.metadata_res = res().metadata;
  plan.rate_cap = spec_.stream_bw;
  plan.data = route_read(*rep, file, host_idx);
  if (timeline_ != nullptr) {
    plan.label =
        "read " + file.name + " " + name() + "->host" + std::to_string(host_idx);
  }
  apply_perturbation(plan, file, /*is_write=*/false, host_idx);
  return plan;
}

IoPlan StorageService::plan_write(const FileRef& file, std::size_t host_idx) const {
  IoPlan plan;
  plan.latency = spec_.link.latency + spec_.base_latency;
  plan.metadata_ops = metadata_ops_per_file();
  plan.metadata_res = res().metadata;
  plan.rate_cap = spec_.stream_bw;
  plan.data = route_write(file, host_idx);
  if (timeline_ != nullptr) {
    plan.label =
        "write " + file.name + " host" + std::to_string(host_idx) + "->" + name();
  }
  apply_perturbation(plan, file, /*is_write=*/true, host_idx);
  return plan;
}

void StorageService::read(const FileRef& file, std::size_t host_idx, Done done) {
  (void)read_cancellable(file, host_idx, std::move(done));
}

void StorageService::write(const FileRef& file, std::size_t host_idx, Done done) {
  // The replica becomes visible only when the last byte lands.
  (void)write_cancellable(file, host_idx, std::move(done));
}

IoHandle StorageService::read_cancellable(const FileRef& file, std::size_t host_idx,
                                          Done done) {
  return execute_plan_cancellable(fabric_, plan_read(file, host_idx), std::move(done),
                                  nullptr);
}

IoHandle StorageService::write_cancellable(const FileRef& file, std::size_t host_idx,
                                           Done done) {
  IoPlan plan = plan_write(file, host_idx);
  reserve_capacity(file);
  return execute_plan_cancellable(
      fabric_, std::move(plan),
      [this, file, host_idx, done = std::move(done)] {
        install_replica(file, host_idx);
        if (done) done();
      },
      [this, file] { abort_write_reservation(file); });
}

void StorageService::begin_external_write(const FileRef& file) {
  reserve_capacity(file);
}

void StorageService::complete_external_write(const FileRef& file, std::size_t host_idx) {
  // Capacity was reserved at begin_external_write; only the replica record
  // is created here (reserve_capacity already credited back the bytes of an
  // overwritten pre-existing replica).
  install_replica(file, host_idx);
}

void StorageService::abort_write_reservation(const FileRef& file) {
  // Exact mirror of reserve_capacity(): the replica map is unchanged since
  // the reservation (install_replica never ran for this write), so the same
  // delta computation reverses it precisely.
  double delta = file.size;
  const auto it = replicas_.find(file.name);
  if (it != replicas_.end()) delta -= it->second.size;
  used_bytes_ -= delta;
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) {
    observer_->on_occupancy_change(*this, file.name, -delta, used_bytes_);
  });
  sample_occupancy();
}

}  // namespace bbsim::storage
