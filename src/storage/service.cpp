#include "storage/service.hpp"

#include <memory>

#include "trace/timeline.hpp"
#include "util/error.hpp"

namespace bbsim::storage {

using util::ConfigError;
using util::InvariantError;
using util::NotFoundError;

void execute_plan(platform::Fabric& fabric, IoPlan plan, Done done) {
  // Shared state for the sub-flow countdown.
  struct State {
    std::size_t pending = 0;
    Done done;
  };
  auto state = std::make_shared<State>();
  state->done = std::move(done);

  auto start_data = [&fabric, plan = std::move(plan), state]() mutable {
    auto launch_subflows = [&fabric, state](const IoPlan& p) {
      if (p.data.empty()) {
        if (state->done) state->done();
        return;
      }
      state->pending = p.data.size();
      for (const SubFlow& sf : p.data) {
        flow::FlowSpec spec;
        spec.volume = sf.volume;
        spec.path = sf.path;
        spec.rate_cap = p.rate_cap;
        spec.label = p.label;  // empty (free) unless a timeline is recording
        fabric.flows().start(std::move(spec), [state] {
          if (--state->pending == 0 && state->done) state->done();
        });
      }
    };

    if (plan.metadata_ops > 0.0) {
      flow::FlowSpec meta;
      meta.volume = plan.metadata_ops;
      meta.path = {plan.metadata_res};
      if (!plan.label.empty()) meta.label = plan.label + " [meta]";
      fabric.flows().start(std::move(meta),
                           [launch_subflows, plan]() { launch_subflows(plan); });
    } else {
      launch_subflows(plan);
    }
  };

  if (plan.latency > 0.0) {
    fabric.engine().schedule_in(plan.latency, std::move(start_data));
  } else {
    // Still defer by a zero-delay event to keep run-to-completion semantics.
    fabric.engine().schedule_in(0.0, std::move(start_data));
  }
}

StorageService::StorageService(platform::Fabric& fabric, std::size_t storage_idx)
    : fabric_(fabric), storage_idx_(storage_idx), spec_(fabric.spec().storage.at(storage_idx)) {}

bool StorageService::has_file(const std::string& file_name) const {
  return replicas_.count(file_name) > 0;
}

const StorageService::Replica* StorageService::replica(const std::string& file_name) const {
  const auto it = replicas_.find(file_name);
  return it == replicas_.end() ? nullptr : &it->second;
}

double StorageService::total_capacity() const {
  if (spec_.disk.capacity == platform::kUnlimited) return platform::kUnlimited;
  return spec_.disk.capacity * spec_.num_nodes;
}

double StorageService::replica_bytes() const {
  double sum = 0.0;
  for (const auto& [_, rep] : replicas_) sum += rep.size;
  return sum;
}

void StorageService::set_metrics(stats::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    occupancy_gauge_ = nullptr;
    occupancy_series_ = nullptr;
    return;
  }
  const std::string base = "storage." + name() + ".occupancy_bytes";
  occupancy_gauge_ = &metrics->gauge(base);
  occupancy_series_ = &metrics->series(base);
  sample_occupancy();  // establish the timeline's starting point
}

void StorageService::set_timeline(trace::TimelineRecorder* timeline) {
  timeline_ = timeline;
  if (timeline_ != nullptr) {
    occupancy_track_ =
        timeline_->counter_track("storage." + name() + ".occupancy_bytes", "bytes");
    sample_occupancy();  // establish the track's starting point
  }
}

void StorageService::sample_occupancy() {
  if (occupancy_gauge_ != nullptr) {
    occupancy_gauge_->set(used_bytes_);
    occupancy_series_->sample(fabric_.engine().now(), used_bytes_);
  }
  if (timeline_ != nullptr) {
    timeline_->counter_sample(occupancy_track_, fabric_.engine().now(), used_bytes_);
  }
}

void StorageService::reserve_capacity(const FileRef& file) {
  BBSIM_ASSERT(file.size >= 0, "negative file size: " + file.name);
  double delta = file.size;
  const auto it = replicas_.find(file.name);
  if (it != replicas_.end()) delta -= it->second.size;  // overwrite frees old bytes
  const double cap = total_capacity();
  if (cap != platform::kUnlimited && used_bytes_ + delta > cap * (1 + 1e-9)) {
    throw ConfigError("storage '" + name() + "' capacity exceeded writing '" + file.name +
                      "' (" + std::to_string(used_bytes_ + delta) + " > " +
                      std::to_string(cap) + " bytes)");
  }
  used_bytes_ += delta;
  if (used_bytes_ > peak_used_bytes_) peak_used_bytes_ = used_bytes_;
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) {
    observer_->on_occupancy_change(*this, file.name, delta, used_bytes_);
  });
  sample_occupancy();
}

void StorageService::install_replica(const FileRef& file, std::size_t host_idx) {
  Replica rep;
  rep.size = file.size;
  rep.node = placement_node(file, host_idx);
  rep.creator_host = host_idx;
  replicas_[file.name] = rep;
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) observer_->on_replica_created(*this, file));
}

void StorageService::register_file(const FileRef& file, std::size_t host_idx) {
  reserve_capacity(file);
  install_replica(file, host_idx);
}

void StorageService::erase_file(const std::string& file_name) {
  const auto it = replicas_.find(file_name);
  if (it == replicas_.end()) return;
  const double size = it->second.size;
  used_bytes_ -= size;
  replicas_.erase(it);
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) {
    observer_->on_occupancy_change(*this, file_name, -size, used_bytes_);
    observer_->on_replica_erased(*this, file_name, size);
  });
  sample_occupancy();
}

bool StorageService::readable_from(const std::string& file_name, std::size_t) const {
  return has_file(file_name);
}

void StorageService::apply_perturbation(IoPlan& plan, const FileRef& file, bool is_write,
                                        std::size_t host_idx) const {
  if (!perturb_) return;
  const IoPerturbation p = perturb_(file, is_write, host_idx);
  plan.latency += p.extra_latency;
  if (p.rate_cap_scale != 1.0 && plan.rate_cap != flow::kUnlimited) {
    plan.rate_cap *= p.rate_cap_scale;
  }
}

IoPlan StorageService::plan_read(const FileRef& file, std::size_t host_idx) const {
  const Replica* rep = replica(file.name);
  if (rep == nullptr) {
    throw NotFoundError("file '" + file.name + "' on storage '" + name() + "'");
  }
  if (!readable_from(file.name, host_idx)) {
    throw InvariantError("file '" + file.name + "' on '" + name() +
                         "' is not readable from host index " + std::to_string(host_idx));
  }
  IoPlan plan;
  plan.latency = spec_.link.latency + spec_.base_latency;
  plan.metadata_ops = metadata_ops_per_file();
  plan.metadata_res = res().metadata;
  plan.rate_cap = spec_.stream_bw;
  plan.data = route_read(*rep, file, host_idx);
  if (timeline_ != nullptr) {
    plan.label =
        "read " + file.name + " " + name() + "->host" + std::to_string(host_idx);
  }
  apply_perturbation(plan, file, /*is_write=*/false, host_idx);
  return plan;
}

IoPlan StorageService::plan_write(const FileRef& file, std::size_t host_idx) const {
  IoPlan plan;
  plan.latency = spec_.link.latency + spec_.base_latency;
  plan.metadata_ops = metadata_ops_per_file();
  plan.metadata_res = res().metadata;
  plan.rate_cap = spec_.stream_bw;
  plan.data = route_write(file, host_idx);
  if (timeline_ != nullptr) {
    plan.label =
        "write " + file.name + " host" + std::to_string(host_idx) + "->" + name();
  }
  apply_perturbation(plan, file, /*is_write=*/true, host_idx);
  return plan;
}

void StorageService::read(const FileRef& file, std::size_t host_idx, Done done) {
  execute_plan(fabric_, plan_read(file, host_idx), std::move(done));
}

void StorageService::write(const FileRef& file, std::size_t host_idx, Done done) {
  IoPlan plan = plan_write(file, host_idx);
  reserve_capacity(file);
  // The replica becomes visible only when the last byte lands.
  execute_plan(fabric_, std::move(plan),
               [this, file, host_idx, done = std::move(done)] {
                 install_replica(file, host_idx);
                 if (done) done();
               });
}

void StorageService::begin_external_write(const FileRef& file) {
  reserve_capacity(file);
}

void StorageService::complete_external_write(const FileRef& file, std::size_t host_idx) {
  // Capacity was reserved at begin_external_write; only the replica record
  // is created here (reserve_capacity already credited back the bytes of an
  // overwritten pre-existing replica).
  install_replica(file, host_idx);
}

}  // namespace bbsim::storage
