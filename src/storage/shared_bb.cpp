#include "storage/shared_bb.hpp"

#include "util/error.hpp"

namespace bbsim::storage {

using platform::BBMode;

SharedBurstBuffer::SharedBurstBuffer(platform::Fabric& fabric, std::size_t storage_idx)
    : StorageService(fabric, storage_idx) {
  if (spec().kind != platform::StorageKind::SharedBB) {
    throw util::ConfigError("SharedBurstBuffer bound to non-shared-BB spec '" + name() + "'");
  }
}

bool SharedBurstBuffer::readable_from(const std::string& file_name,
                                      std::size_t host_idx) const {
  const Replica* rep = replica(file_name);
  if (rep == nullptr) return false;
  if (mode() == BBMode::Private) return rep->creator_host == host_idx;
  return true;
}

int SharedBurstBuffer::placement_node(const FileRef&, std::size_t host_idx) const {
  if (mode() == BBMode::Striped) return -1;  // striped over all nodes
  // Private: the compute node's namespace lives on one BB node.
  return static_cast<int>(host_idx % static_cast<std::size_t>(spec().num_nodes));
}

double SharedBurstBuffer::metadata_ops_per_file() const {
  // Striped files touch every BB node's metadata on open/close.
  return mode() == BBMode::Striped ? static_cast<double>(spec().num_nodes) : 1.0;
}

std::vector<SubFlow> SharedBurstBuffer::route_read(const Replica& rep, const FileRef& file,
                                                   std::size_t host_idx) const {
  const auto& r = res();
  const auto& h = fabric_.host_resources(host_idx);
  std::vector<SubFlow> flows;
  if (rep.node >= 0) {  // pinned (private mode)
    const std::size_t node = static_cast<std::size_t>(rep.node);
    flows.push_back(SubFlow{file.size, {r.disk_read[node], r.link_down[node], h.nic_down}});
  } else {  // striped: one sub-flow per stripe
    const int n = spec().num_nodes;
    for (int i = 0; i < n; ++i) {
      const std::size_t node = static_cast<std::size_t>(i);
      flows.push_back(
          SubFlow{file.size / n, {r.disk_read[node], r.link_down[node], h.nic_down}});
    }
  }
  return flows;
}

std::vector<SubFlow> SharedBurstBuffer::route_write(const FileRef& file,
                                                    std::size_t host_idx) const {
  const auto& r = res();
  const auto& h = fabric_.host_resources(host_idx);
  std::vector<SubFlow> flows;
  const int target = placement_node(file, host_idx);
  if (target >= 0) {
    const std::size_t node = static_cast<std::size_t>(target);
    flows.push_back(SubFlow{file.size, {h.nic_up, r.link_up[node], r.disk_write[node]}});
  } else {
    const int n = spec().num_nodes;
    for (int i = 0; i < n; ++i) {
      const std::size_t node = static_cast<std::size_t>(i);
      flows.push_back(
          SubFlow{file.size / n, {h.nic_up, r.link_up[node], r.disk_write[node]}});
    }
  }
  return flows;
}

}  // namespace bbsim::storage
