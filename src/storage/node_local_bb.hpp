// bbsim -- the node-local burst buffer service (Summit NVMe).
//
// Each compute node embeds its own device; I/O never crosses the network
// (the "link" resources model the local NVMe/PCIe interface). A file is
// only accessible from the node that holds it -- the data-management
// challenge the paper highlights for on-node designs.
#pragma once

#include "storage/service.hpp"

namespace bbsim::storage {

class NodeLocalBurstBuffer final : public StorageService {
 public:
  NodeLocalBurstBuffer(platform::Fabric& fabric, std::size_t storage_idx);

  bool readable_from(const std::string& file_name, std::size_t host_idx) const override;

  /// Host index holding this file's device, or npos if absent.
  std::size_t holder_host(const std::string& file_name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 protected:
  std::vector<SubFlow> route_read(const Replica& rep, const FileRef& file,
                                  std::size_t host_idx) const override;
  std::vector<SubFlow> route_write(const FileRef& file,
                                   std::size_t host_idx) const override;
  int placement_node(const FileRef& file, std::size_t host_idx) const override;
};

}  // namespace bbsim::storage
