#include "storage/pfs.hpp"

#include <functional>

#include "util/error.hpp"

namespace bbsim::storage {

PfsService::PfsService(platform::Fabric& fabric, std::size_t storage_idx)
    : StorageService(fabric, storage_idx) {
  if (spec().kind != platform::StorageKind::PFS) {
    throw util::ConfigError("PfsService bound to non-PFS spec '" + name() + "'");
  }
}

int PfsService::placement_node(const FileRef& file, std::size_t) const {
  // Deterministic spread across I/O nodes by file-name hash.
  return static_cast<int>(std::hash<std::string>{}(file.name) %
                          static_cast<std::size_t>(spec().num_nodes));
}

std::vector<SubFlow> PfsService::route_read(const Replica& rep, const FileRef& file,
                                            std::size_t host_idx) const {
  const auto& r = res();
  const auto& h = fabric_.host_resources(host_idx);
  const std::size_t node = static_cast<std::size_t>(rep.node);
  return {SubFlow{file.size, {r.disk_read[node], r.link_down[node], h.nic_down}}};
}

std::vector<SubFlow> PfsService::route_write(const FileRef& file,
                                             std::size_t host_idx) const {
  const auto& r = res();
  const auto& h = fabric_.host_resources(host_idx);
  const std::size_t node = static_cast<std::size_t>(placement_node(file, host_idx));
  return {SubFlow{file.size, {h.nic_up, r.link_up[node], r.disk_write[node]}}};
}

}  // namespace bbsim::storage
