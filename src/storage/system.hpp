// bbsim -- StorageSystem: all storage services of a platform plus the
// cross-service file registry and fused transfers (stage-in/stage-out).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/node_local_bb.hpp"
#include "storage/pfs.hpp"
#include "storage/service.hpp"
#include "storage/shared_bb.hpp"

namespace bbsim::storage {

class StorageSystem {
 public:
  /// Builds one service per StorageSpec in the fabric's platform.
  explicit StorageSystem(platform::Fabric& fabric);
  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  platform::Fabric& fabric() { return fabric_; }

  std::size_t service_count() const { return services_.size(); }
  StorageService& service(std::size_t idx) { return *services_.at(idx); }
  const StorageService& service(std::size_t idx) const { return *services_.at(idx); }
  StorageService& service(const std::string& name);

  /// The platform's PFS (throws ConfigError if the platform has none).
  StorageService& pfs();
  /// The platform's burst buffer, or nullptr when the platform has none.
  StorageService* burst_buffer();
  const StorageService* burst_buffer() const;

  /// Services currently holding `file_name`, in platform declaration order.
  std::vector<StorageService*> replicas_of(const std::string& file_name);

  /// Best service for `host_idx` to read `file_name` from: a readable
  /// burst-buffer replica if one exists, otherwise the PFS replica.
  /// Returns nullptr when no readable replica exists anywhere.
  StorageService* best_source(const std::string& file_name, std::size_t host_idx);

  /// Fused copy: read from `from` and write to `to` as one coupled flow
  /// (the data stream is throttled by the slowest of the two paths, like a
  /// `cp` from PFS into the BB mount). `via_host` is the compute node
  /// driving the copy. The destination replica appears on completion.
  void transfer(const FileRef& file, StorageService& from, StorageService& to,
                std::size_t via_host, Done done);

  /// As transfer(), returning a handle that can cancel the copy mid-flight:
  /// the destination's capacity reservation is rolled back, no destination
  /// replica appears, and `done` never fires. The event/flow sequence
  /// matches transfer() exactly, so uncancelled runs are bitwise-identical.
  IoHandle transfer_cancellable(const FileRef& file, StorageService& from,
                                StorageService& to, std::size_t via_host, Done done);

  /// Install the same perturbation hook on every service (testbed).
  void set_perturbation(const PerturbFn& fn);

  /// Install the same metrics registry on every service (nullptr disables).
  void set_metrics(stats::MetricsRegistry* metrics);

  /// Install the same timeline recorder on every service (nullptr disables).
  void set_timeline(trace::TimelineRecorder* timeline);

  /// Install the same audit observer on every service (nullptr disables).
  void set_observer(StorageObserver* observer);

 private:
  platform::Fabric& fabric_;
  std::vector<std::unique_ptr<StorageService>> services_;
};

}  // namespace bbsim::storage
