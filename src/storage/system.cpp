#include "storage/system.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bbsim::storage {

using platform::StorageKind;
using util::ConfigError;
using util::InvariantError;
using util::NotFoundError;

StorageSystem::StorageSystem(platform::Fabric& fabric) : fabric_(fabric) {
  const auto& specs = fabric.spec().storage;
  services_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    switch (specs[i].kind) {
      case StorageKind::PFS:
        services_.push_back(std::make_unique<PfsService>(fabric, i));
        break;
      case StorageKind::SharedBB:
        services_.push_back(std::make_unique<SharedBurstBuffer>(fabric, i));
        break;
      case StorageKind::NodeLocalBB:
        services_.push_back(std::make_unique<NodeLocalBurstBuffer>(fabric, i));
        break;
    }
  }
}

StorageService& StorageSystem::service(const std::string& name) {
  for (auto& s : services_) {
    if (s->name() == name) return *s;
  }
  throw NotFoundError("storage service '" + name + "'");
}

StorageService& StorageSystem::pfs() {
  for (auto& s : services_) {
    if (s->kind() == StorageKind::PFS) return *s;
  }
  throw ConfigError("platform has no PFS service");
}

StorageService* StorageSystem::burst_buffer() {
  for (auto& s : services_) {
    if (s->kind() != StorageKind::PFS) return s.get();
  }
  return nullptr;
}

const StorageService* StorageSystem::burst_buffer() const {
  for (const auto& s : services_) {
    if (s->kind() != StorageKind::PFS) return s.get();
  }
  return nullptr;
}

std::vector<StorageService*> StorageSystem::replicas_of(const std::string& file_name) {
  std::vector<StorageService*> out;
  for (auto& s : services_) {
    if (s->has_file(file_name)) out.push_back(s.get());
  }
  return out;
}

StorageService* StorageSystem::best_source(const std::string& file_name,
                                           std::size_t host_idx) {
  StorageService* pfs_with_file = nullptr;
  for (auto& s : services_) {
    if (!s->has_file(file_name)) continue;
    if (s->kind() == StorageKind::PFS) {
      pfs_with_file = s.get();
    } else if (s->readable_from(file_name, host_idx)) {
      return s.get();  // a usable burst-buffer replica wins
    }
  }
  return pfs_with_file;
}

void StorageSystem::transfer(const FileRef& file, StorageService& from, StorageService& to,
                             std::size_t via_host, Done done) {
  (void)transfer_cancellable(file, from, to, via_host, std::move(done));
}

IoHandle StorageSystem::transfer_cancellable(const FileRef& file, StorageService& from,
                                             StorageService& to, std::size_t via_host,
                                             Done done) {
  IoPlan read = from.plan_read(file, via_host);
  IoPlan write = to.plan_write(file, via_host);

  IoPlan fused;
  fused.latency = read.latency + write.latency + to.spec().stage_latency;
  fused.rate_cap = std::min(read.rate_cap, write.rate_cap);
  // Metadata: both services are touched; pay both op counts on the
  // destination's metadata server and the source's via a second plan would
  // over-complicate things -- the dominant cost is the destination (create).
  fused.metadata_ops = read.metadata_ops + write.metadata_ops;
  fused.metadata_res = write.metadata_res;

  const auto& r = read.data;
  const auto& w = write.data;
  if (r.empty() || w.empty()) {
    throw InvariantError("transfer of '" + file.name + "': empty data plan");
  }
  auto concat = [](const std::vector<flow::ResourceId>& a,
                   const std::vector<flow::ResourceId>& b) {
    std::vector<flow::ResourceId> out = a;
    out.insert(out.end(), b.begin(), b.end());
    return out;
  };
  if (r.size() == 1) {
    // Single source, possibly striped destination: the source resources are
    // shared by every stripe sub-flow (volumes sum to the file size).
    for (const SubFlow& sf : w) {
      fused.data.push_back(SubFlow{sf.volume, concat(r[0].path, sf.path)});
    }
  } else if (w.size() == 1) {
    for (const SubFlow& sf : r) {
      fused.data.push_back(SubFlow{sf.volume, concat(sf.path, w[0].path)});
    }
  } else if (r.size() == w.size()) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      fused.data.push_back(SubFlow{w[i].volume, concat(r[i].path, w[i].path)});
    }
  } else {
    throw InvariantError("transfer of '" + file.name +
                         "': incompatible striping (" + std::to_string(r.size()) + " vs " +
                         std::to_string(w.size()) + " sub-flows)");
  }

  if (!read.label.empty()) {  // labelling on: annotate the fused copy
    fused.label = "transfer " + file.name + " " + from.name() + "->" + to.name();
  }

  to.begin_external_write(file);
  return execute_plan_cancellable(
      fabric_, std::move(fused),
      [&to, file, via_host, done = std::move(done)] {
        to.complete_external_write(file, via_host);
        if (done) done();
      },
      [&to, file] { to.abort_write_reservation(file); });
}

void StorageSystem::set_perturbation(const PerturbFn& fn) {
  for (auto& s : services_) s->set_perturbation(fn);
}

void StorageSystem::set_metrics(stats::MetricsRegistry* metrics) {
  for (auto& s : services_) s->set_metrics(metrics);
}

void StorageSystem::set_timeline(trace::TimelineRecorder* timeline) {
  for (auto& s : services_) s->set_timeline(timeline);
}

void StorageSystem::set_observer(StorageObserver* observer) {
  for (auto& s : services_) s->set_observer(observer);
}

}  // namespace bbsim::storage
