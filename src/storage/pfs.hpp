// bbsim -- the parallel file system service.
//
// The PFS is globally shared: any compute node may read or write any file.
// Files are placed on one PFS I/O node each (hash-spread when num_nodes > 1;
// the presets use a single aggregate node per Table I).
#pragma once

#include "storage/service.hpp"

namespace bbsim::storage {

class PfsService final : public StorageService {
 public:
  PfsService(platform::Fabric& fabric, std::size_t storage_idx);

 protected:
  std::vector<SubFlow> route_read(const Replica& rep, const FileRef& file,
                                  std::size_t host_idx) const override;
  std::vector<SubFlow> route_write(const FileRef& file,
                                   std::size_t host_idx) const override;
  int placement_node(const FileRef& file, std::size_t host_idx) const override;
};

}  // namespace bbsim::storage
