/// \file
/// bbsim::fuzz -- the differential runner: executes one scenario on both
/// the production engine (exec::Simulation) and the reference replayer
/// (oracle::reference_execute) and diffs the results; campaign drivers
/// sample N scenarios from a seed, minimize failures and write replayable
/// fuzzcase files. A solver-only mode differentially tests
/// flow::Network::solve against the brute-force reference max-min solver
/// on random allocation problems.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"
#include "oracle/diff.hpp"

namespace bbsim::fuzz {

/// Knobs for one differential run.
struct RunOptions {
  oracle::DiffOptions diff;
  /// Scale the burst buffer's link/disk capacities on the ENGINE side only
  /// (via Fabric::scale_storage_capacity) before running. 1.0 = off. Any
  /// other value injects a deliberate engine/reference divergence -- the
  /// self-test that proves the harness can catch timing bugs.
  double engine_bb_capacity_scale = 1.0;
};

/// What one differential run produced.
struct RunOutcome {
  bool diverged = false;
  std::vector<oracle::Divergence> divergences;
  /// Error text when a side threw (both throwing is agreement: the
  /// scenario is infeasible and both sides said so).
  std::string engine_error;
  std::string reference_error;
};

/// Runs the scenario through both engines and diffs. Never throws on
/// engine/reference errors (they are recorded); rethrows only internal
/// harness failures. Scenarios with an armed fault/checkpoint spec are
/// dispatched to the resil invariant battery (the oracle models no faults):
/// their divergences carry "resil.*" metric names.
RunOutcome run_scenario(const Scenario& scenario, const RunOptions& options = {});

/// One fuzz-found, minimized failure.
struct CampaignFailure {
  std::uint64_t iteration = 0;
  Scenario minimized;
  std::vector<oracle::Divergence> divergences;  ///< of the minimized case
  std::string written_path;                     ///< empty when out_dir unset
};

struct CampaignOptions {
  std::uint64_t seed = 42;
  int iterations = 100;
  RunOptions run;
  /// Sample scenarios with a fault/checkpoint cocktail (sample_resil_scenario)
  /// instead of plain ones -- bbsim_fuzz --mode resil. Each such scenario
  /// runs the resil invariant battery: the spec-stripped twin must agree
  /// with the oracle AND be bitwise-identical to a run with explicitly
  /// empty specs; the faulty run must be deterministic, audit-clean, and
  /// keep its accounting identities.
  bool resil_cocktail = false;
  /// Stop after this many failures (each is minimized, which is slow).
  int max_failures = 1;
  /// Directory for minimized fuzzcase JSON files ("" = do not write).
  std::string out_dir;
  bool minimize = true;
};

struct CampaignResult {
  int iterations_run = 0;
  std::vector<CampaignFailure> failures;
  bool clean() const { return failures.empty(); }
};

/// Samples `iterations` scenarios from the seed and differentially tests
/// each. Deterministic: same options, same outcome.
CampaignResult run_campaign(const CampaignOptions& options);

/// Replays one fuzzcase file; returns the outcome (used by the corpus
/// regression tests and bbsim_fuzz --replay).
RunOutcome replay_case_file(const std::string& path, const RunOptions& options = {});

/// Solver-only differential: random max-min problems through
/// flow::Network::solve vs the brute-force reference.
struct SolverCampaignResult {
  int iterations_run = 0;
  int divergent = 0;
  std::string first_divergence;  ///< human-readable description
  bool clean() const { return divergent == 0; }
};

/// `engine_capacity_scale` != 1.0 perturbs the ENGINE problem's first
/// resource capacity -- the solver-level fault-injection self-test.
SolverCampaignResult run_solver_campaign(std::uint64_t seed, int iterations,
                                         double engine_capacity_scale = 1.0,
                                         double rel_tol = 1e-9);

/// Churn differential for the *incremental* solver: each iteration builds a
/// random allocation problem, then walks a random mutation sequence
/// (add_flow / remove_flow of arbitrary live flows / set_capacity mid-run),
/// solving after every mutation. Every converged state is checked two ways:
/// against an immediate full re-solve of the same network (incremental off)
/// and against the long-double oracle. Removals target arbitrary flows, so
/// the free-list recycles ids while later adds are in flight -- the churn
/// pattern that broke flow_ids() ordering. Deterministic per seed.
SolverCampaignResult run_solver_churn_campaign(std::uint64_t seed, int iterations,
                                               double rel_tol = 1e-6);

}  // namespace bbsim::fuzz
