/// \file
/// bbsim::fuzz -- one differential-testing scenario: a platform, a workflow
/// and an execution config, fully value-semantic and JSON round-trippable
/// (schema `bbsim.fuzzcase.v1`) so every fuzz-found divergence can be
/// checked into tests/corpus/ and replayed forever.
#pragma once

#include <memory>
#include <string>

#include "exec/engine.hpp"
#include "json/json.hpp"
#include "oracle/replay.hpp"
#include "platform/spec.hpp"
#include "util/rng.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::fuzz {

inline constexpr const char* kFuzzcaseSchema = "bbsim.fuzzcase.v1";

/// The execution knobs a scenario pins down. The placement policy is kept
/// as its CLI-style spec string (all_pfs | all_bb | fraction:<f> |
/// size:<bytes> | size_inv:<bytes> | locality | greedy:<bytes>) so it
/// serialises losslessly.
struct ScenarioConfig {
  std::string placement_spec = "all_bb";
  exec::StageInMode stage_in_mode = exec::StageInMode::Task;
  exec::SchedulerPolicy scheduler = exec::SchedulerPolicy::Fcfs;
  bool stage_out = false;
  bool bb_eviction = false;
  int stage_in_width = 1;
  int force_cores = 0;
  bool locality_pinning = true;
  /// Resilience specs in their CLI grammar (resil::FaultSpec::parse /
  /// resil::CheckpointSpec::parse). Empty (the default, and what every
  /// pre-resil corpus file deserializes to) = disabled. A scenario with
  /// either spec armed is checked with the resil invariant battery instead
  /// of the plain engine-vs-oracle diff (the oracle models no faults).
  std::string fault_spec;
  std::string checkpoint_spec;
};

/// A complete, self-contained differential test case.
struct Scenario {
  std::string label;  ///< provenance, e.g. "seed=42 iter=17"
  platform::PlatformSpec platform;
  wf::Workflow workflow;
  ScenarioConfig config;

  /// Engine-side config (trace/metrics/audit off: the diff ignores them).
  exec::ExecutionConfig exec_config() const;
  /// Reference-side config with the same semantics.
  oracle::RefConfig ref_config() const;

  /// Serialise as a bbsim.fuzzcase.v1 document. Unlimited capacities are
  /// written as -1 (JSON has no infinity).
  json::Value to_json() const;
};

/// Instantiates a placement policy from its spec string (the grammar of
/// bbsim_run --policy, with plain-number byte values). Throws ConfigError
/// on an unknown spec.
std::shared_ptr<exec::PlacementPolicy> make_placement(const std::string& spec);

/// Parses a bbsim.fuzzcase.v1 document; throws ParseError / ConfigError on
/// malformed input (wrong schema, missing sections, invalid DAG).
Scenario scenario_from_json(const json::Value& doc);

/// Reads and parses a fuzzcase file.
Scenario scenario_from_file(const std::string& path);

/// Samples a random feasible scenario: platform dimensions and bandwidths
/// from the presets' order-of-magnitude ranges, a DAG of a random shape,
/// and a random placement/staging/scheduling config. Always satisfiable by
/// construction (task cores fit the largest host; restricted-BB scenarios
/// keep locality pinning on).
Scenario sample_scenario(util::Rng& rng);

/// sample_scenario plus a random fault/checkpoint cocktail: node crashes
/// (usually), BB degradation and PFS brownout windows (sometimes), and one
/// of no / interval / Daly checkpointing. Every cocktail carries a finite
/// horizon so faulty runs terminate.
Scenario sample_resil_scenario(util::Rng& rng);

}  // namespace bbsim::fuzz
