#include "fuzz/minimize.hpp"

#include <algorithm>
#include <optional>
#include <set>

namespace bbsim::fuzz {

namespace {

/// True when the candidate still shows a divergence. A candidate the
/// harness itself cannot evaluate (invalid DAG after surgery) counts as
/// not reproducing.
bool reproduces(const Scenario& candidate, const RunOptions& options) {
  try {
    return run_scenario(candidate, options).diverged;
  } catch (...) {
    return false;
  }
}

/// Rebuilds the workflow without `victim`: the task goes, so do the files
/// only it produced, every other task's input list is stripped of them, and
/// files nobody references anymore are dropped.
std::optional<Scenario> without_task(const Scenario& base, const std::string& victim) {
  if (base.workflow.task_count() <= 1) return std::nullopt;
  std::set<std::string> dropped_files(base.workflow.task(victim).outputs.begin(),
                                      base.workflow.task(victim).outputs.end());
  Scenario out = base;
  out.workflow = wf::Workflow{};
  out.workflow.name = base.workflow.name;

  std::set<std::string> referenced;
  for (const std::string& name : base.workflow.task_names()) {
    if (name == victim) continue;
    wf::Task task = base.workflow.task(name);
    task.inputs.erase(std::remove_if(task.inputs.begin(), task.inputs.end(),
                                     [&](const std::string& f) {
                                       return dropped_files.count(f) > 0;
                                     }),
                      task.inputs.end());
    for (const std::string& f : task.inputs) referenced.insert(f);
    for (const std::string& f : task.outputs) referenced.insert(f);
    out.workflow.add_task(std::move(task));
  }
  for (const std::string& f : base.workflow.file_names()) {
    if (dropped_files.count(f) > 0 || referenced.count(f) == 0) continue;
    out.workflow.add_file(base.workflow.file(f));
  }
  try {
    out.workflow.validate();
  } catch (...) {
    return std::nullopt;
  }
  return out;
}

/// Strips one workflow *input* file (no producer) from every consumer.
std::optional<Scenario> without_input_file(const Scenario& base,
                                           const std::string& victim) {
  Scenario out = base;
  out.workflow = wf::Workflow{};
  out.workflow.name = base.workflow.name;
  for (const std::string& name : base.workflow.task_names()) {
    wf::Task task = base.workflow.task(name);
    task.inputs.erase(std::remove(task.inputs.begin(), task.inputs.end(), victim),
                      task.inputs.end());
    out.workflow.add_task(std::move(task));
  }
  for (const std::string& f : base.workflow.file_names()) {
    if (f == victim) continue;
    out.workflow.add_file(base.workflow.file(f));
  }
  try {
    out.workflow.validate();
  } catch (...) {
    return std::nullopt;
  }
  return out;
}

int max_task_cores(const Scenario& sc) {
  int m = 1;
  for (const std::string& name : sc.workflow.task_names()) {
    m = std::max(m, sc.workflow.task(name).requested_cores);
  }
  m = std::max(m, sc.config.force_cores);
  return m;
}

std::optional<Scenario> without_last_host(const Scenario& base) {
  if (base.platform.hosts.size() <= 1) return std::nullopt;
  Scenario out = base;
  out.platform.hosts.pop_back();
  int max_cores = 0;
  for (const platform::HostSpec& h : out.platform.hosts) {
    max_cores = std::max(max_cores, h.cores);
  }
  if (max_task_cores(out) > max_cores) return std::nullopt;
  // NodeLocalBB node counts track the host count.
  for (platform::StorageSpec& s : out.platform.storage) {
    if (s.kind == platform::StorageKind::NodeLocalBB) {
      s.num_nodes = static_cast<int>(out.platform.hosts.size());
    }
  }
  return out;
}

std::optional<Scenario> with_fewer_storage_nodes(const Scenario& base,
                                                std::size_t storage_idx) {
  const platform::StorageSpec& s = base.platform.storage[storage_idx];
  if (s.kind == platform::StorageKind::NodeLocalBB || s.num_nodes <= 1) {
    return std::nullopt;
  }
  Scenario out = base;
  out.platform.storage[storage_idx].num_nodes = s.num_nodes - 1;
  return out;
}

std::optional<Scenario> without_burst_buffer(const Scenario& base) {
  Scenario out = base;
  auto& storage = out.platform.storage;
  const auto it = std::find_if(storage.begin(), storage.end(),
                               [](const platform::StorageSpec& s) {
                                 return s.kind != platform::StorageKind::PFS;
                               });
  if (it == storage.end()) return std::nullopt;
  storage.erase(it);
  return out;
}

}  // namespace

Scenario minimize_scenario(const Scenario& failing, const RunOptions& options) {
  Scenario current = failing;
  bool changed = true;
  while (changed) {
    changed = false;

    // Tasks first: each removal deletes the most scenario surface.
    for (const std::string& name : std::vector<std::string>(
             current.workflow.task_names())) {
      const auto candidate = without_task(current, name);
      if (candidate && reproduces(*candidate, options)) {
        current = *candidate;
        changed = true;
      }
    }

    // Then unconsumed bytes: workflow input files.
    for (const std::string& fname :
         std::vector<std::string>(current.workflow.input_files())) {
      const auto candidate = without_input_file(current, fname);
      if (candidate && reproduces(*candidate, options)) {
        current = *candidate;
        changed = true;
      }
    }

    // Then the platform: hosts, storage nodes, the BB itself.
    while (true) {
      const auto candidate = without_last_host(current);
      if (candidate && reproduces(*candidate, options)) {
        current = *candidate;
        changed = true;
      } else {
        break;
      }
    }
    for (std::size_t s = 0; s < current.platform.storage.size(); ++s) {
      while (true) {
        const auto candidate = with_fewer_storage_nodes(current, s);
        if (candidate && reproduces(*candidate, options)) {
          current = *candidate;
          changed = true;
        } else {
          break;
        }
      }
    }
    {
      const auto candidate = without_burst_buffer(current);
      if (candidate && reproduces(*candidate, options)) {
        current = *candidate;
        changed = true;
      }
    }
  }
  return current;
}

}  // namespace bbsim::fuzz
