#include "fuzz/runner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "flow/network.hpp"
#include "fuzz/minimize.hpp"
#include "json/json.hpp"
#include "oracle/maxmin_ref.hpp"
#include "resil/fault.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::fuzz {

namespace {

/// The critpath invariant battery (BBSIM_CRITPATH builds only; a no-op
/// otherwise). A twin run with the recorder on must
///   1. change nothing except adding the "critpath" section (the
///      nullable-observer off-identity, seen from the on side);
///   2. produce a path whose length and per-class blame total both equal
///      the makespan within 1e-9 (the partition-of-[0, makespan] invariant);
///   3. replay to the observed makespan exactly with every scale at 1
///      (the what-if baseline identity);
///   4. never produce a what-if makespan above the observed one (scales
///      only relax constraints).
/// `base_dump` is the serialized result of the identical run without
/// critpath.
void check_critpath_battery(const Scenario& scenario,
                            const exec::ExecutionConfig& base_cfg,
                            const std::string& base_dump, RunOutcome& out) {
#if defined(BBSIM_CRITPATH_ENABLED)
  auto fail = [&out](const char* field, const std::string& what, double engine,
                     double reference) {
    out.diverged = true;
    out.divergences.push_back(oracle::Divergence{field, what, engine, reference});
  };
  try {
    exec::ExecutionConfig cfg = base_cfg;
    cfg.critpath = true;
    const exec::Result r =
        exec::Simulation(scenario.platform, scenario.workflow, cfg).run();
    const json::Value full = r.to_json();
    if (!full.is_object() || full.as_object().find("critpath") == nullptr) {
      fail("critpath.section", "no critpath section in a critpath run", 0.0, 1.0);
      return;
    }
    json::Object stripped;
    for (const auto& [key, value] : full.as_object()) {
      if (key != "critpath") stripped.set(key, value);
    }
    if (json::Value(std::move(stripped)).dump() != base_dump) {
      fail("critpath.identity",
           "enabling critpath changed the result beyond adding its section",
           1.0, 0.0);
    }
    const json::Object& cp = full.as_object().at("critpath").as_object();
    const double makespan = cp.at("makespan").as_number();
    const double tol = 1e-9 * std::max(1.0, makespan);
    const double path_length = cp.at("path_length").as_number();
    if (std::fabs(path_length - makespan) > tol) {
      fail("critpath.path_length", "critical-path length != makespan",
           path_length, makespan);
    }
    double blame_total = 0.0;
    for (const auto& [cls, seconds] : cp.at("blame").as_object()) {
      (void)cls;
      blame_total += seconds.as_number();
    }
    if (std::fabs(blame_total - makespan) > tol) {
      fail("critpath.blame", "blame classes do not sum to the makespan",
           blame_total, makespan);
    }
    for (const json::Value& w : cp.at("what_if").as_array()) {
      const std::string& name = w.at("scenario").as_string();
      const double m = w.at("makespan").as_number();
      if (name == "baseline" && std::fabs(m - makespan) > tol) {
        fail("critpath.baseline", "unit-scale replay missed the makespan", m,
             makespan);
      }
      if (m > makespan + tol) {
        fail("critpath.monotone", "what-if '" + name + "' exceeds the makespan",
             m, makespan);
      }
    }
  } catch (const util::Error& e) {
    fail("critpath.exception", e.what(), 1.0, 0.0);
  }
#else
  (void)scenario;
  (void)base_cfg;
  (void)base_dump;
  (void)out;
#endif
}

/// The resil invariant battery (the oracle models no faults, so a faulty
/// scenario cannot be diffed against it directly):
///   1. the spec-stripped twin must agree with the oracle (plain diff);
///   2. explicitly-empty specs must leave the twin's result byte-identical
///      (the "faults disabled = bitwise-identical engine" guarantee);
///   3. two faulty runs must produce byte-identical results (determinism);
///   4. the faulty run must be audit-clean under the full invariant audit;
///   5. accounting identities: every task has a record, restarts match
///      attempts, drained checkpoint bytes never exceed written ones;
///   6. the critpath battery under faults (check_critpath_battery).
RunOutcome run_resil_battery(const Scenario& scenario, const RunOptions& options) {
  Scenario stripped = scenario;
  stripped.config.fault_spec.clear();
  stripped.config.checkpoint_spec.clear();
  RunOutcome out = run_scenario(stripped, options);
  if (out.diverged || !out.engine_error.empty()) return out;

  auto fail = [&out](const char* field, const std::string& what, double engine,
                     double reference) {
    out.diverged = true;
    out.divergences.push_back(oracle::Divergence{field, what, engine, reference});
  };

  try {
    const auto run_once = [&scenario](const exec::ExecutionConfig& cfg) {
      return exec::Simulation(scenario.platform, scenario.workflow, cfg).run();
    };

    const exec::Result base = run_once(stripped.exec_config());
    exec::ExecutionConfig empty_cfg = stripped.exec_config();
    empty_cfg.faults = resil::FaultSpec::parse("");
    empty_cfg.checkpoint = resil::CheckpointSpec::parse("");
    if (base.to_json().dump() != run_once(empty_cfg).to_json().dump()) {
      fail("resil.identity", "empty specs changed the faultless result", 1.0, 0.0);
    }

    exec::ExecutionConfig faulty_cfg = scenario.exec_config();
    faulty_cfg.audit = true;
    const exec::Result f0 = run_once(faulty_cfg);
    const exec::Result f1 = run_once(faulty_cfg);
    if (f0.to_json().dump() != f1.to_json().dump()) {
      fail("resil.determinism", "faulty run not reproducible", 1.0, 0.0);
    }
    if (f0.audit_violations != 0) {
      fail("resil.audit", "audit violations under faults",
           static_cast<double>(f0.audit_violations), 0.0);
    }
    if (f0.tasks.size() != scenario.workflow.task_count()) {
      fail("resil.records", "task record count",
           static_cast<double>(f0.tasks.size()),
           static_cast<double>(scenario.workflow.task_count()));
    }
    if (f0.resil_stats != nullptr) {
      const resil::RunStats& rs = *f0.resil_stats;
      int extra_attempts = 0;
      for (const auto& entry : rs.tasks) extra_attempts += entry.second.attempts - 1;
      if (extra_attempts != rs.restarts) {
        fail("resil.restarts", "restarts != sum(attempts - 1)",
             static_cast<double>(rs.restarts), static_cast<double>(extra_attempts));
      }
      if (rs.checkpoint_bytes_drained > rs.checkpoint_bytes_written + 1e-6) {
        fail("resil.drain", "drained more checkpoint bytes than written",
             rs.checkpoint_bytes_drained, rs.checkpoint_bytes_written);
      }
      if (rs.wasted_core_seconds() < -1e-9) {
        fail("resil.waste", "negative waste", rs.wasted_core_seconds(), 0.0);
      }
    }
    if (!out.diverged) {
      // 6. critpath invariants must hold under faults too (rework and
      //    requeue edges are exactly where the back-walk is subtle).
      check_critpath_battery(scenario, faulty_cfg, f0.to_json().dump(), out);
    }
  } catch (const util::Error& e) {
    out.engine_error = e.what();
    fail("resil.exception", e.what(), 1.0, 0.0);
  }
  return out;
}

}  // namespace

RunOutcome run_scenario(const Scenario& scenario, const RunOptions& options) {
  if (!scenario.config.fault_spec.empty() ||
      !scenario.config.checkpoint_spec.empty()) {
    return run_resil_battery(scenario, options);
  }

  RunOutcome out;

  exec::Result engine_result;
  bool engine_ok = false;
  try {
    exec::Simulation sim(scenario.platform, scenario.workflow, scenario.exec_config());
    if (options.engine_bb_capacity_scale != 1.0) {
      const std::size_t bb_idx =
          sim.fabric().spec().find_kind(platform::StorageKind::SharedBB) !=
                  platform::PlatformSpec::npos
              ? sim.fabric().spec().find_kind(platform::StorageKind::SharedBB)
              : sim.fabric().spec().find_kind(platform::StorageKind::NodeLocalBB);
      if (bb_idx != platform::PlatformSpec::npos) {
        sim.fabric().scale_storage_capacity(bb_idx, options.engine_bb_capacity_scale);
      }
    }
    engine_result = sim.run();
    engine_ok = true;
  } catch (const util::Error& e) {
    out.engine_error = e.what();
  }

  oracle::RefResult reference_result;
  bool reference_ok = false;
  try {
    reference_result =
        oracle::reference_execute(scenario.platform, scenario.workflow,
                                  scenario.ref_config());
    reference_ok = true;
  } catch (const util::Error& e) {
    out.reference_error = e.what();
  }

  if (engine_ok != reference_ok) {
    // One side completed, the other rejected the scenario: a semantic
    // divergence, not float noise.
    out.diverged = true;
    out.divergences.push_back(oracle::Divergence{
        "exception", engine_ok ? out.reference_error : out.engine_error,
        engine_ok ? 1.0 : 0.0, reference_ok ? 1.0 : 0.0});
    return out;
  }
  if (!engine_ok) return out;  // both rejected: agreement

  out.divergences = oracle::diff_results(engine_result, reference_result, options.diff);
  out.diverged = !out.divergences.empty();
  if (!out.diverged && options.engine_bb_capacity_scale == 1.0) {
    // The twin rebuilds its stack from the scenario, so it only matches the
    // engine run when no out-of-band capacity scaling was applied.
    check_critpath_battery(scenario, scenario.exec_config(),
                           engine_result.to_json().dump(), out);
  }
  return out;
}

CampaignResult run_campaign(const CampaignOptions& options) {
  CampaignResult result;
  const util::Rng root(options.seed);
  for (int i = 0; i < options.iterations; ++i) {
    ++result.iterations_run;
    util::Rng iter_rng = root.fork(static_cast<std::uint64_t>(i));
    Scenario scenario = options.resil_cocktail ? sample_resil_scenario(iter_rng)
                                               : sample_scenario(iter_rng);
    scenario.label =
        util::format("seed=%llu iter=%d", static_cast<unsigned long long>(options.seed), i);
    RunOutcome outcome = run_scenario(scenario, options.run);
    if (!outcome.diverged) continue;

    CampaignFailure failure;
    failure.iteration = static_cast<std::uint64_t>(i);
    failure.minimized =
        options.minimize ? minimize_scenario(scenario, options.run) : scenario;
    failure.divergences = run_scenario(failure.minimized, options.run).divergences;
    if (failure.divergences.empty()) {
      // Minimization must preserve the divergence; fall back to the
      // original case rather than report a non-reproducing file.
      failure.minimized = scenario;
      failure.divergences = std::move(outcome.divergences);
    }
    if (!options.out_dir.empty()) {
      failure.written_path = util::format("%s/fuzzcase_seed%llu_iter%d.json",
                                          options.out_dir.c_str(),
                                          static_cast<unsigned long long>(options.seed), i);
      json::write_file(failure.written_path, failure.minimized.to_json());
    }
    result.failures.push_back(std::move(failure));
    if (static_cast<int>(result.failures.size()) >= options.max_failures) break;
  }
  return result;
}

RunOutcome replay_case_file(const std::string& path, const RunOptions& options) {
  return run_scenario(scenario_from_file(path), options);
}

SolverCampaignResult run_solver_campaign(std::uint64_t seed, int iterations,
                                         double engine_capacity_scale, double rel_tol) {
  SolverCampaignResult result;
  const util::Rng root(seed);
  for (int i = 0; i < iterations; ++i) {
    ++result.iterations_run;
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));

    // Random allocation problem: a handful of resources, flows with random
    // paths, occasional rate caps and non-unit weights.
    const int n_res = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<double> capacities;
    for (int r = 0; r < n_res; ++r) {
      capacities.push_back(rng.chance(0.15) ? flow::kUnlimited
                                            : rng.uniform(1e8, 1e10));
    }
    const int n_flows = static_cast<int>(rng.uniform_int(1, 12));
    oracle::RefProblem problem;
    problem.capacities = capacities;
    flow::Network network;
    for (int r = 0; r < n_res; ++r) {
      const double cap =
          r == 0 && engine_capacity_scale != 1.0 && capacities[0] != flow::kUnlimited
              ? capacities[0] * engine_capacity_scale
              : capacities[static_cast<std::size_t>(r)];
      network.add_resource(util::format("r%d", r), cap);
    }
    std::vector<flow::FlowId> ids;
    for (int f = 0; f < n_flows; ++f) {
      oracle::RefFlow ref;
      for (int r = 0; r < n_res; ++r) {
        if (rng.chance(0.5)) ref.path.push_back(static_cast<std::uint32_t>(r));
      }
      ref.rate_cap = rng.chance(0.3) ? rng.uniform(1e7, 5e9) : flow::kUnlimited;
      ref.weight = rng.chance(0.25) ? rng.uniform(0.5, 4.0) : 1.0;
      flow::FlowSpec spec;
      spec.volume = 1.0;
      spec.path = ref.path;
      spec.rate_cap = ref.rate_cap;
      spec.weight = ref.weight;
      ids.push_back(network.add_flow(spec));
      problem.flows.push_back(std::move(ref));
    }

    network.solve();
    const std::vector<double> reference = oracle::reference_maxmin(problem);

    for (int f = 0; f < n_flows; ++f) {
      const double engine_rate = network.flow(ids[static_cast<std::size_t>(f)]).rate;
      const double ref_rate = reference[static_cast<std::size_t>(f)];
      const bool agree =
          (std::isinf(engine_rate) && std::isinf(ref_rate)) ||
          std::fabs(engine_rate - ref_rate) <=
              rel_tol * std::max({std::fabs(engine_rate), std::fabs(ref_rate), 1.0});
      if (!agree) {
        ++result.divergent;
        if (result.first_divergence.empty()) {
          std::ostringstream os;
          os << "iter " << i << " flow " << f << ": engine=" << engine_rate
             << " reference=" << ref_rate;
          result.first_divergence = os.str();
        }
        break;
      }
    }
  }
  return result;
}

SolverCampaignResult run_solver_churn_campaign(std::uint64_t seed, int iterations,
                                               double rel_tol) {
  SolverCampaignResult result;
  const util::Rng root(seed);

  const auto rates_agree = [rel_tol](double a, double b) {
    return (std::isinf(a) && std::isinf(b)) ||
           std::fabs(a - b) <= rel_tol * std::max({std::fabs(a), std::fabs(b), 1.0});
  };

  for (int i = 0; i < iterations; ++i) {
    ++result.iterations_run;
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));

    const int n_res = static_cast<int>(rng.uniform_int(1, 6));
    flow::Network network;
    for (int r = 0; r < n_res; ++r) {
      network.add_resource(util::format("r%d", r),
                           rng.chance(0.15) ? flow::kUnlimited
                                            : rng.uniform(1e8, 1e10));
    }

    const auto random_spec = [&rng, n_res] {
      flow::FlowSpec spec;
      spec.volume = 1.0;
      for (int r = 0; r < n_res; ++r) {
        if (rng.chance(0.5)) spec.path.push_back(static_cast<std::uint32_t>(r));
      }
      spec.rate_cap = rng.chance(0.3) ? rng.uniform(1e7, 5e9) : flow::kUnlimited;
      spec.weight = rng.chance(0.25) ? rng.uniform(0.5, 4.0) : 1.0;
      return spec;
    };

    std::vector<flow::FlowId> live;
    bool iteration_diverged = false;
    const int n_steps = static_cast<int>(rng.uniform_int(6, 30));
    for (int s = 0; s < n_steps && !iteration_diverged; ++s) {
      // Mutate: add, remove an *arbitrary* live flow (recycling its id into
      // the free-list while younger flows survive), or shift a capacity.
      const double op = rng.uniform(0.0, 1.0);
      if (op < 0.45 || live.empty()) {
        live.push_back(network.add_flow(random_spec()));
      } else if (op < 0.8) {
        const std::size_t victim = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        network.remove_flow(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        const auto res = static_cast<flow::ResourceId>(
            rng.uniform_int(0, n_res - 1));
        network.set_capacity(res, rng.chance(0.15) ? flow::kUnlimited
                                                   : rng.uniform(1e8, 1e10));
      }
      network.solve();

      // Referee 1: a full re-solve of the identical state must not move
      // any rate. Referee 2: neither may the oracle.
      std::vector<flow::FlowId> order;
      std::vector<double> incremental_rates;
      oracle::RefProblem problem;
      for (int r = 0; r < n_res; ++r) {
        problem.capacities.push_back(
            network.resource(static_cast<flow::ResourceId>(r)).capacity);
      }
      network.for_each_flow([&](flow::FlowId id, const flow::FlowState& st) {
        order.push_back(id);
        incremental_rates.push_back(st.rate);
        oracle::RefFlow ref;
        ref.path = st.spec.path;
        ref.rate_cap = st.spec.rate_cap;
        ref.weight = st.spec.weight;
        problem.flows.push_back(std::move(ref));
      });

      network.set_incremental(false);
      network.solve();
      network.set_incremental(true);
      const std::vector<double> reference = oracle::reference_maxmin(problem);

      for (std::size_t f = 0; f < order.size(); ++f) {
        const double incremental_rate = incremental_rates[f];
        const double full_rate = network.flow(order[f]).rate;
        const double oracle_rate = reference[f];
        if (!rates_agree(incremental_rate, full_rate) ||
            !rates_agree(incremental_rate, oracle_rate)) {
          ++result.divergent;
          iteration_diverged = true;
          if (result.first_divergence.empty()) {
            std::ostringstream os;
            os << "iter " << i << " step " << s << " flow id " << order[f]
               << ": incremental=" << incremental_rate << " full=" << full_rate
               << " oracle=" << oracle_rate;
            result.first_divergence = os.str();
          }
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace bbsim::fuzz
