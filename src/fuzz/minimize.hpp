/// \file
/// bbsim::fuzz -- greedy test-case minimization. Repeatedly tries to drop a
/// task (with its output files), an input file, a compute host, a storage
/// node or the whole burst buffer, keeping any removal that still
/// reproduces the divergence, until a fixed point. The result is the small,
/// human-debuggable fuzzcase that gets checked into tests/corpus/.
#pragma once

#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"

namespace bbsim::fuzz {

/// Shrinks `failing` while run_scenario(candidate, options) still diverges.
/// Returns the smallest reproducer found (at worst, `failing` itself).
/// Deterministic; cost is O(rounds * tasks) differential runs.
Scenario minimize_scenario(const Scenario& failing, const RunOptions& options);

}  // namespace bbsim::fuzz
