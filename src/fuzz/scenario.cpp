#include "fuzz/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "resil/fault.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "workflow/random_dag.hpp"

namespace bbsim::fuzz {

using platform::kUnlimited;
using util::ConfigError;
using util::ParseError;

namespace {

/// JSON has no infinity; unlimited capacities round-trip as -1.
json::Value num_or_unlimited(double v) {
  return v == kUnlimited ? json::Value(-1.0) : json::Value(v);
}

double unlimited_or_num(const json::Value& v) {
  const double n = v.as_number();
  return n < 0 ? kUnlimited : n;
}

exec::StageInMode stage_in_from(const std::string& name) {
  if (name == "task") return exec::StageInMode::Task;
  if (name == "instant") return exec::StageInMode::Instant;
  throw ConfigError("fuzzcase: unknown stage_in mode '" + name + "'");
}

const char* stage_in_to_string(exec::StageInMode mode) {
  return mode == exec::StageInMode::Task ? "task" : "instant";
}

exec::SchedulerPolicy scheduler_from(const std::string& name) {
  if (name == "fcfs") return exec::SchedulerPolicy::Fcfs;
  if (name == "critical_path") return exec::SchedulerPolicy::CriticalPathFirst;
  if (name == "largest_first") return exec::SchedulerPolicy::LargestFirst;
  if (name == "smallest_first") return exec::SchedulerPolicy::SmallestFirst;
  throw ConfigError("fuzzcase: unknown scheduler '" + name + "'");
}

}  // namespace

std::shared_ptr<exec::PlacementPolicy> make_placement(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : spec.substr(colon + 1);
  auto number = [&]() {
    if (arg.empty()) throw ConfigError("placement '" + kind + ":' needs a value");
    return std::stod(arg);
  };
  if (kind == "all_pfs") return exec::all_pfs_policy();
  if (kind == "all_bb") return exec::all_bb_policy();
  if (kind == "fraction") {
    return std::make_shared<exec::FractionPolicy>(number(), exec::Tier::BurstBuffer);
  }
  if (kind == "size") return std::make_shared<exec::SizeThresholdPolicy>(number());
  if (kind == "size_inv") {
    return std::make_shared<exec::SizeThresholdPolicy>(number(), true);
  }
  if (kind == "locality") return std::make_shared<exec::LocalityPolicy>();
  if (kind == "greedy") return std::make_shared<exec::GreedyBytesPolicy>(number());
  throw ConfigError("unknown placement policy '" + spec + "'");
}

exec::ExecutionConfig Scenario::exec_config() const {
  exec::ExecutionConfig cfg;
  cfg.placement = make_placement(config.placement_spec);
  cfg.stage_in_mode = config.stage_in_mode;
  cfg.scheduler = config.scheduler;
  cfg.stage_out = config.stage_out;
  cfg.bb_eviction = config.bb_eviction;
  cfg.stage_in_width = config.stage_in_width;
  cfg.force_cores = config.force_cores;
  cfg.locality_pinning = config.locality_pinning;
  cfg.collect_trace = false;
  cfg.faults = resil::FaultSpec::parse(config.fault_spec);
  cfg.checkpoint = resil::CheckpointSpec::parse(config.checkpoint_spec);
  return cfg;
}

oracle::RefConfig Scenario::ref_config() const {
  oracle::RefConfig cfg;
  cfg.placement = make_placement(config.placement_spec);
  cfg.stage_in_mode = config.stage_in_mode;
  cfg.scheduler = config.scheduler;
  cfg.stage_out = config.stage_out;
  cfg.bb_eviction = config.bb_eviction;
  cfg.stage_in_width = config.stage_in_width;
  cfg.force_cores = config.force_cores;
  cfg.locality_pinning = config.locality_pinning;
  return cfg;
}

json::Value Scenario::to_json() const {
  json::Object doc;
  doc.set("schema", kFuzzcaseSchema);
  doc.set("label", label);

  json::Object plat;
  plat.set("name", platform.name);
  json::Array hosts;
  for (const platform::HostSpec& h : platform.hosts) {
    json::Object o;
    o.set("name", h.name);
    o.set("cores", h.cores);
    o.set("core_speed", h.core_speed);
    o.set("nic_bw", num_or_unlimited(h.nic_bw));
    hosts.push_back(json::Value(std::move(o)));
  }
  plat.set("hosts", json::Value(std::move(hosts)));
  json::Array storage;
  for (const platform::StorageSpec& s : platform.storage) {
    json::Object o;
    o.set("name", s.name);
    o.set("kind", platform::to_string(s.kind));
    o.set("mode", platform::to_string(s.mode));
    o.set("num_nodes", s.num_nodes);
    o.set("read_bw", num_or_unlimited(s.disk.read_bw));
    o.set("write_bw", num_or_unlimited(s.disk.write_bw));
    o.set("capacity", num_or_unlimited(s.disk.capacity));
    o.set("link_bw", num_or_unlimited(s.link.bandwidth));
    o.set("link_latency", s.link.latency);
    o.set("base_latency", s.base_latency);
    o.set("stream_bw", num_or_unlimited(s.stream_bw));
    o.set("metadata_ops", num_or_unlimited(s.metadata_ops_per_sec));
    o.set("stage_latency", s.stage_latency);
    storage.push_back(json::Value(std::move(o)));
  }
  plat.set("storage", json::Value(std::move(storage)));
  doc.set("platform", json::Value(std::move(plat)));

  json::Object wfo;
  wfo.set("name", workflow.name);
  json::Array files;
  for (const std::string& fname : workflow.file_names()) {
    json::Object o;
    o.set("name", fname);
    o.set("size", workflow.file(fname).size);
    files.push_back(json::Value(std::move(o)));
  }
  wfo.set("files", json::Value(std::move(files)));
  json::Array tasks;
  for (const std::string& tname : workflow.task_names()) {
    const wf::Task& t = workflow.task(tname);
    json::Object o;
    o.set("name", t.name);
    o.set("type", t.type);
    o.set("flops", t.flops);
    o.set("alpha", t.alpha);
    o.set("cores", t.requested_cores);
    json::Array in, out;
    for (const std::string& f : t.inputs) in.push_back(json::Value(f));
    for (const std::string& f : t.outputs) out.push_back(json::Value(f));
    o.set("inputs", json::Value(std::move(in)));
    o.set("outputs", json::Value(std::move(out)));
    tasks.push_back(json::Value(std::move(o)));
  }
  wfo.set("tasks", json::Value(std::move(tasks)));
  doc.set("workflow", json::Value(std::move(wfo)));

  json::Object cfg;
  cfg.set("placement", config.placement_spec);
  cfg.set("stage_in", stage_in_to_string(config.stage_in_mode));
  cfg.set("scheduler", exec::to_string(config.scheduler));
  cfg.set("stage_out", config.stage_out);
  cfg.set("bb_eviction", config.bb_eviction);
  cfg.set("stage_in_width", config.stage_in_width);
  cfg.set("force_cores", config.force_cores);
  cfg.set("locality_pinning", config.locality_pinning);
  // Written only when armed so pre-resil corpus files stay byte-stable
  // through a load/save round trip.
  if (!config.fault_spec.empty()) cfg.set("faults", config.fault_spec);
  if (!config.checkpoint_spec.empty()) cfg.set("checkpoint", config.checkpoint_spec);
  doc.set("config", json::Value(std::move(cfg)));
  return json::Value(std::move(doc));
}

Scenario scenario_from_json(const json::Value& doc) {
  const std::string schema = doc.get_string("schema", "");
  if (schema != kFuzzcaseSchema) {
    throw ParseError("fuzzcase: expected schema '" + std::string(kFuzzcaseSchema) +
                     "', got '" + schema + "'");
  }
  Scenario sc;
  sc.label = doc.get_string("label", "");

  const json::Value& plat = doc.at("platform");
  sc.platform.name = plat.get_string("name", "fuzz-platform");
  for (const json::Value& h : plat.at("hosts").as_array()) {
    platform::HostSpec hs;
    hs.name = h.at("name").as_string();
    hs.cores = static_cast<int>(h.at("cores").as_int());
    hs.core_speed = h.at("core_speed").as_number();
    hs.nic_bw = unlimited_or_num(h.at("nic_bw"));
    sc.platform.hosts.push_back(std::move(hs));
  }
  for (const json::Value& s : plat.at("storage").as_array()) {
    platform::StorageSpec ss;
    ss.name = s.at("name").as_string();
    ss.kind = platform::storage_kind_from_string(s.at("kind").as_string());
    ss.mode = platform::bb_mode_from_string(s.at("mode").as_string());
    ss.num_nodes = static_cast<int>(s.at("num_nodes").as_int());
    ss.disk.read_bw = unlimited_or_num(s.at("read_bw"));
    ss.disk.write_bw = unlimited_or_num(s.at("write_bw"));
    ss.disk.capacity = unlimited_or_num(s.at("capacity"));
    ss.link.bandwidth = unlimited_or_num(s.at("link_bw"));
    ss.link.latency = s.at("link_latency").as_number();
    ss.base_latency = s.get_number("base_latency", 0.0);
    ss.stream_bw = unlimited_or_num(s.at("stream_bw"));
    ss.metadata_ops_per_sec = unlimited_or_num(s.at("metadata_ops"));
    ss.stage_latency = s.get_number("stage_latency", 0.0);
    sc.platform.storage.push_back(std::move(ss));
  }
  sc.platform.validate_and_normalize();

  const json::Value& wfo = doc.at("workflow");
  sc.workflow.name = wfo.get_string("name", "fuzz-workflow");
  for (const json::Value& f : wfo.at("files").as_array()) {
    sc.workflow.add_file(wf::File{f.at("name").as_string(), f.at("size").as_number()});
  }
  for (const json::Value& t : wfo.at("tasks").as_array()) {
    wf::Task task;
    task.name = t.at("name").as_string();
    task.type = t.get_string("type", "generic");
    task.flops = t.at("flops").as_number();
    task.alpha = t.get_number("alpha", 0.0);
    task.requested_cores = static_cast<int>(t.get_int("cores", 1));
    for (const json::Value& f : t.at("inputs").as_array()) {
      task.inputs.push_back(f.as_string());
    }
    for (const json::Value& f : t.at("outputs").as_array()) {
      task.outputs.push_back(f.as_string());
    }
    sc.workflow.add_task(std::move(task));
  }
  sc.workflow.validate();

  const json::Value& cfg = doc.at("config");
  sc.config.placement_spec = cfg.get_string("placement", "all_bb");
  sc.config.stage_in_mode = stage_in_from(cfg.get_string("stage_in", "task"));
  sc.config.scheduler = scheduler_from(cfg.get_string("scheduler", "fcfs"));
  sc.config.stage_out = cfg.get_bool("stage_out", false);
  sc.config.bb_eviction = cfg.get_bool("bb_eviction", false);
  sc.config.stage_in_width = static_cast<int>(cfg.get_int("stage_in_width", 1));
  sc.config.force_cores = static_cast<int>(cfg.get_int("force_cores", 0));
  sc.config.locality_pinning = cfg.get_bool("locality_pinning", true);
  sc.config.fault_spec = cfg.get_string("faults", "");
  sc.config.checkpoint_spec = cfg.get_string("checkpoint", "");
  (void)make_placement(sc.config.placement_spec);  // validate early
  (void)resil::FaultSpec::parse(sc.config.fault_spec);
  (void)resil::CheckpointSpec::parse(sc.config.checkpoint_spec);
  return sc;
}

Scenario scenario_from_file(const std::string& path) {
  return scenario_from_json(json::parse_file(path));
}

// --------------------------------------------------------------- sampler

Scenario sample_scenario(util::Rng& rng) {
  Scenario sc;
  sc.platform.name = "fuzz-platform";

  // Hosts: small clusters; speeds/bandwidths within an order of magnitude
  // of the Cori/Summit presets (platform/presets.hpp).
  const int n_hosts = static_cast<int>(rng.uniform_int(1, 6));
  int max_host_cores = 0;
  for (int i = 0; i < n_hosts; ++i) {
    platform::HostSpec h;
    h.name = util::format("host%02d", i);
    h.cores = static_cast<int>(rng.uniform_int(2, 16));
    h.core_speed = rng.uniform(10e9, 50e9);
    h.nic_bw = rng.uniform(1e9, 16e9);
    max_host_cores = std::max(max_host_cores, h.cores);
    sc.platform.hosts.push_back(std::move(h));
  }

  // PFS: always present; finite bandwidths, unlimited capacity.
  {
    platform::StorageSpec pfs;
    pfs.name = "pfs";
    pfs.kind = platform::StorageKind::PFS;
    pfs.num_nodes = static_cast<int>(rng.uniform_int(1, 4));
    pfs.disk.read_bw = rng.uniform(0.5e9, 8e9);
    pfs.disk.write_bw = rng.uniform(0.5e9, 8e9);
    pfs.link.bandwidth = rng.uniform(1e9, 12e9);
    if (rng.chance(0.3)) pfs.link.latency = rng.uniform(0.0, 2e-3);
    if (rng.chance(0.2)) pfs.metadata_ops_per_sec = rng.uniform(1e3, 1e5);
    if (rng.chance(0.2)) pfs.stream_bw = rng.uniform(0.2e9, 2e9);
    sc.platform.storage.push_back(std::move(pfs));
  }

  // Burst buffer: usually present, all three architectures.
  bool restricted_bb = false;
  if (rng.chance(0.85)) {
    platform::StorageSpec bb;
    bb.name = "bb";
    const double kind_pick = rng.uniform(0.0, 1.0);
    if (kind_pick < 0.4) {
      bb.kind = platform::StorageKind::SharedBB;
      bb.mode = platform::BBMode::Striped;
      bb.num_nodes = static_cast<int>(rng.uniform_int(1, 4));
    } else if (kind_pick < 0.7) {
      bb.kind = platform::StorageKind::SharedBB;
      bb.mode = platform::BBMode::Private;
      bb.num_nodes = static_cast<int>(rng.uniform_int(1, 4));
      restricted_bb = true;
    } else {
      bb.kind = platform::StorageKind::NodeLocalBB;
      bb.num_nodes = n_hosts;  // normalized anyway
      restricted_bb = true;
    }
    bb.disk.read_bw = rng.uniform(2e9, 20e9);
    bb.disk.write_bw = rng.uniform(2e9, 20e9);
    bb.link.bandwidth = rng.uniform(2e9, 24e9);
    if (rng.chance(0.25)) bb.link.latency = rng.uniform(0.0, 1e-3);
    if (rng.chance(0.2)) bb.stage_latency = rng.uniform(0.0, 0.5);
    if (rng.chance(0.2)) bb.metadata_ops_per_sec = rng.uniform(1e3, 1e5);
    // Finite capacity ~40% of the time to exercise demotion/skip/eviction.
    if (rng.chance(0.4)) {
      bb.disk.capacity = rng.uniform(32e6, 512e6);
    }
    sc.platform.storage.push_back(std::move(bb));
  }
  sc.platform.validate_and_normalize();

  // Workflow: a random structural shape sized to stay brute-forceable.
  wf::RandomDagConfig dag;
  dag.levels = static_cast<int>(rng.uniform_int(1, 4));
  dag.min_width = 1;
  dag.max_width = static_cast<int>(rng.uniform_int(2, 7));
  dag.fan_in_probability = rng.uniform(0.2, 0.6);
  dag.min_file_size = 1e6;
  dag.max_file_size = 64e6;
  dag.min_seq_seconds = 0.2;
  dag.max_seq_seconds = 10.0;
  dag.max_requested_cores = std::min(4, max_host_cores);
  const auto shape = static_cast<wf::DagShape>(rng.uniform_int(0, 4));
  util::Rng dag_rng = rng.fork("dag");
  sc.workflow = wf::make_shaped_dag(shape, dag, dag_rng);

  // Execution config.
  const char* placements[] = {"all_bb",  "all_pfs",      "fraction:0.5", "fraction:0.25",
                              "size:8e6", "size_inv:8e6", "locality",     "greedy:128e6"};
  sc.config.placement_spec =
      placements[rng.uniform_int(0, static_cast<std::int64_t>(std::size(placements)) - 1)];
  sc.config.stage_in_mode =
      rng.chance(0.7) ? exec::StageInMode::Task : exec::StageInMode::Instant;
  const exec::SchedulerPolicy schedulers[] = {
      exec::SchedulerPolicy::Fcfs, exec::SchedulerPolicy::CriticalPathFirst,
      exec::SchedulerPolicy::LargestFirst, exec::SchedulerPolicy::SmallestFirst};
  sc.config.scheduler = schedulers[rng.uniform_int(0, 3)];
  sc.config.stage_out = rng.chance(0.3);
  sc.config.bb_eviction = rng.chance(0.3);
  sc.config.stage_in_width = static_cast<int>(rng.uniform_int(1, 3));
  sc.config.force_cores = rng.chance(0.15)
                              ? static_cast<int>(rng.uniform_int(
                                    1, std::min<std::int64_t>(4, max_host_cores)))
                              : 0;
  // Unpinned restricted-BB runs with >1 host can legitimately dead-end on
  // an unreadable replica; keep those scenarios feasible by construction.
  sc.config.locality_pinning = restricted_bb || rng.chance(0.5);
  return sc;
}

Scenario sample_resil_scenario(util::Rng& rng) {
  Scenario sc = sample_scenario(rng);
  util::Rng frng = rng.fork("resil");

  std::string faults =
      util::format("seed=%llu", static_cast<unsigned long long>(
                                    frng.uniform_int(1, 1000000)));
  bool node_faults = false;
  if (frng.chance(0.8)) {
    node_faults = true;
    faults += util::format(",node_mtbf=%.1f,node_repair=%.1f",
                           frng.uniform(20.0, 300.0), frng.uniform(2.0, 30.0));
  }
  if (frng.chance(0.4)) {
    faults += util::format(",bb_mtbf=%.1f,bb_degrade=%.2f,bb_duration=%.1f",
                           frng.uniform(10.0, 120.0), frng.uniform(0.1, 0.9),
                           frng.uniform(5.0, 60.0));
  }
  if (frng.chance(0.3)) {
    faults += util::format(",pfs_mtbf=%.1f,pfs_brownout=%.2f,pfs_duration=%.1f",
                           frng.uniform(10.0, 120.0), frng.uniform(0.1, 0.9),
                           frng.uniform(5.0, 60.0));
  }
  // A finite horizon guarantees every faulty run terminates even when the
  // crash/repair cycle is faster than the longest task.
  faults += util::format(",horizon=%.1f", frng.uniform(40.0, 300.0));
  sc.config.fault_spec = faults;

  const std::int64_t ckpt = frng.uniform_int(0, 2);
  if (ckpt == 1) {
    sc.config.checkpoint_spec =
        util::format("interval=%.1f,fraction=0.2,restart=%.1f",
                     frng.uniform(2.0, 20.0), frng.uniform(0.0, 5.0));
  } else if (ckpt == 2 && node_faults) {
    // Daly needs a node MTBF to derive its interval from.
    sc.config.checkpoint_spec = "daly,fraction=0.1";
  }
  return sc;
}

}  // namespace bbsim::fuzz
