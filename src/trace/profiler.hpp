/// \file
/// Wall-clock self-profiler: scoped RAII timers aggregated per subsystem
/// (solver solve(), engine event dispatch, placement decisions, sweep
/// workers). Opt-in and null-pointer no-op like the timeline recorder.
///
/// Everything here measures *wall* time, so its output is inherently
/// non-deterministic; it is exported under a clearly marked
/// "nondeterministic" section of the run report and must stay excluded
/// from golden/determinism comparisons.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace bbsim::stats {
class MetricsRegistry;
}  // namespace bbsim::stats

namespace bbsim::trace {

/// Aggregated wall-clock cost of one instrumented code region.
struct ProfileSection {
  std::string name;
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;

  void record(double seconds) {
    ++calls;
    total_seconds += seconds;
    if (seconds > max_seconds) max_seconds = seconds;
  }
};

/// Per-run profiler. Publishers cache the ProfileSection pointer returned
/// by section() so the hot path is one clock read + one add.
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Create (or fetch) the section named `name`. Pointers stay valid for
  /// the profiler's lifetime.
  ProfileSection* section(const std::string& name);

  /// Fold another profiler's sections into this one (sweep workers merge
  /// into the sweep-level profiler under the progress lock).
  void merge(const Profiler& other);

  const std::vector<std::unique_ptr<ProfileSection>>& sections() const {
    return order_;
  }

  /// Name-sorted JSON report. Marked "nondeterministic": wall-clock values
  /// differ run to run and must never enter golden comparisons.
  json::Value to_json() const;

  /// Publish `profile.<section>.seconds` / `.calls` into a metrics
  /// registry (same nondeterminism caveat; metrics consumers that diff
  /// reports should strip the `profile.` prefix).
  void publish(stats::MetricsRegistry& registry) const;

 private:
  std::vector<std::unique_ptr<ProfileSection>> order_;  ///< creation order
};

/// RAII wall-clock timer; records into its section on destruction.
/// A null section makes the timer free apart from the null test, which is
/// how profiling stays zero-cost when disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(ProfileSection* section) : section_(section) {
    if (section_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (section_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    section_->record(std::chrono::duration<double>(elapsed).count());
  }

 private:
  ProfileSection* section_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bbsim::trace
