/// \file
/// bbsim::trace -- the structured virtual-time timeline behind
/// `--timeline-out`: the time-resolved view of a run the paper's whole
/// Section III characterization is drawn from (per-phase task timings,
/// achieved storage bandwidth over time, burst-buffer occupancy).
///
/// Every layer of the simulator publishes into one TimelineRecorder
/// (opt-in, null-pointer no-op exactly like stats::MetricsRegistry -- the
/// hot paths pay a pointer null-check when tracing is off):
///
///   exec::Simulation   one task span per executed task, split into
///                      read / compute / write phases (from TaskRecord);
///   flow::FlowManager  one span per flow (file transfer or metadata
///                      burst) carrying its label, byte volume and every
///                      change of its max-min allocated bandwidth;
///   storage / sim      counter tracks: BB occupancy, per-storage achieved
///                      bandwidth (the time-resolved Figure 9), event-queue
///                      depth.
///
/// The finished Timeline exports Chrome/Perfetto trace-event JSON
/// (Timeline::to_perfetto) that loads directly in https://ui.perfetto.dev
/// or chrome://tracing. Export is deterministic: spans carry only virtual
/// time, lanes are assigned by a stable greedy first-fit, tracks are
/// name-sorted, so two identical runs serialise byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "json/json.hpp"

namespace bbsim::trace {

/// One executed task, with the paper's read/compute/write phase split.
struct TaskSpan {
  std::string name;
  std::string type;
  std::size_t host = 0;
  int cores = 1;
  double t_ready = 0.0;
  double t_start = 0.0;
  double t_reads_done = 0.0;
  double t_compute_done = 0.0;
  double t_end = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  std::size_t lane = 0;  ///< display lane on its host (assigned by finish())
};

/// One (time, allocated bandwidth) change point of a flow.
struct RatePoint {
  double time = 0.0;
  double rate = 0.0;  ///< bytes/second granted by the max-min solver
};

/// One flow through the platform (a file transfer or a metadata burst).
struct FlowSpan {
  std::string label;  ///< e.g. "read resample_0.fits pfs->host0"
  double t_begin = 0.0;
  double t_end = 0.0;
  double bytes = 0.0;
  bool completed = false;        ///< false: aborted or still open at finish()
  std::vector<RatePoint> rates;  ///< dedup'd allocated-bandwidth changes
  std::size_t lane = 0;          ///< display lane (assigned by finish())

  double duration() const { return t_end - t_begin; }
  double mean_rate() const {
    const double d = duration();
    return d > 0.0 ? bytes / d : 0.0;
  }
};

/// One sample of a counter track.
struct CounterSample {
  double time = 0.0;
  double value = 0.0;
};

/// A named counter track (BB occupancy, achieved bandwidth, queue depth).
struct CounterTrack {
  std::string name;
  std::string unit;  ///< "bytes", "bytes/s", "events" -- documentation only
  std::vector<CounterSample> samples;
};

/// One causal edge of the critical path, linking two task spans. Exported
/// as a Perfetto flow-event pair ("s" on the upstream span, "f" on the
/// downstream one) so the path is visible across timeline lanes.
struct CritLink {
  std::string from_task;
  std::string to_task;
  double time = 0.0;  ///< handoff time (upstream end / downstream pick-up)
};

/// Handle to a counter track, cached by publishers (no name lookup on the
/// sampling path).
using TrackId = std::size_t;

/// The finished, immutable timeline of one run.
struct Timeline {
  std::vector<std::string> host_names;  ///< index = host id
  std::vector<TaskSpan> tasks;          ///< sorted by (host, t_start, name)
  std::vector<FlowSpan> flows;          ///< in begin order
  std::vector<CounterTrack> counters;   ///< sorted by name
  std::vector<CritLink> critpath_links; ///< in path order (may be empty)
  /// When set (TimelineRecorder::set_wait_spans), each task whose t_ready
  /// precedes t_start additionally exports a "wait" span over
  /// [t_ready, t_start) on its lane, and lanes are packed over
  /// [t_ready, t_end] so the wait is visible. Off by default: the classic
  /// layout (and its golden exports) is unchanged. The batch layer turns
  /// this on so queue delay shows up per job.
  bool wait_spans = false;

  /// Chrome trace-event JSON ("traceEvents" array of "X"/"C"/"M" events,
  /// timestamps in microseconds). Deterministic for identical runs. Layout:
  /// one process per host (task lanes as threads), one "flows" process
  /// (transfer lanes as threads), one "counters" process.
  json::Value to_perfetto() const;
};

/// The collection side: layers publish spans and samples while the
/// simulation runs; finish() seals the data into a Timeline.
///
/// The recorder is single-run, single-threaded state (each Simulation owns
/// its own, like its MetricsRegistry), so sweep workers never share one.
class TimelineRecorder {
 public:
  TimelineRecorder() = default;
  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  // ------------------------------------------------------- counter tracks
  /// Create (or fetch) the track named `name`; `unit` is informational.
  TrackId counter_track(const std::string& name, const std::string& unit);
  /// Append one sample. Samples at the same timestamp coalesce (last value
  /// wins) so per-event publishers cannot bloat the track within one
  /// simulated instant.
  void counter_sample(TrackId track, double time, double value);

  // ---------------------------------------------------------------- flows
  /// A flow with engine id `flow_id` started. Ids may be recycled by the
  /// flow network; a begin for a closed id opens a fresh span.
  void flow_begin(std::uint64_t flow_id, double time, std::string label,
                  double bytes);
  /// The solver granted `rate` bytes/s at `time` (dedup'd: consecutive
  /// identical rates collapse; infinite rates are skipped).
  void flow_rate(std::uint64_t flow_id, double time, double rate);
  /// The flow finished (`completed`) or was aborted (`!completed`).
  void flow_end(std::uint64_t flow_id, double time, bool completed);

  // ---------------------------------------------------------------- tasks
  void add_task(TaskSpan span);
  void set_host_names(std::vector<std::string> names);
  /// Record one critical-path edge (exported as Perfetto "s"/"f" flow
  /// events). Call before finish(), in path order.
  void add_critpath_link(std::string from_task, std::string to_task,
                         double time);
  /// Export queue-wait spans and pack lanes from t_ready (see
  /// Timeline::wait_spans). Call before finish().
  void set_wait_spans(bool on);

  // ---------------------------------------------------------- inspection
  std::size_t task_count() const { return timeline_.tasks.size(); }
  std::size_t flow_count() const { return timeline_.flows.size(); }
  std::size_t open_flow_count() const { return open_flows_.size(); }
  std::size_t counter_track_count() const { return timeline_.counters.size(); }

  /// Seal the timeline: close any still-open flows at their last known
  /// time, sort tracks by name, assign display lanes. The recorder is
  /// empty afterwards.
  Timeline finish();

 private:
  Timeline timeline_;
  std::unordered_map<std::uint64_t, std::size_t> open_flows_;  ///< id -> index
};

}  // namespace bbsim::trace
