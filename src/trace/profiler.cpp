#include "trace/profiler.hpp"

#include <algorithm>

#include "stats/metrics.hpp"

namespace bbsim::trace {

ProfileSection* Profiler::section(const std::string& name) {
  for (const auto& s : order_) {
    if (s->name == name) return s.get();
  }
  auto s = std::make_unique<ProfileSection>();
  s->name = name;
  order_.push_back(std::move(s));
  return order_.back().get();
}

void Profiler::merge(const Profiler& other) {
  for (const auto& theirs : other.order_) {
    ProfileSection* mine = section(theirs->name);
    mine->calls += theirs->calls;
    mine->total_seconds += theirs->total_seconds;
    mine->max_seconds = std::max(mine->max_seconds, theirs->max_seconds);
  }
}

json::Value Profiler::to_json() const {
  json::Object root;
  // Wall-clock measurements: values change run to run. Golden and
  // determinism comparisons must drop any object carrying this marker.
  root.set("nondeterministic", true);
  root.set("unit", "seconds");
  json::Array arr;
  // Insertion (registration) order, not name order: sections read in the
  // order the run created them, and a newly registered section cannot
  // reshuffle the report of every existing one.
  for (const auto& s : order_) {
    json::Object o;
    o.set("name", s->name);
    o.set("calls", s->calls);
    o.set("total_seconds", s->total_seconds);
    o.set("max_seconds", s->max_seconds);
    o.set("mean_seconds",
          s->calls > 0 ? s->total_seconds / static_cast<double>(s->calls) : 0.0);
    arr.push_back(json::Value(std::move(o)));
  }
  root.set("sections", json::Value(std::move(arr)));
  return json::Value(std::move(root));
}

void Profiler::publish(stats::MetricsRegistry& registry) const {
  for (const auto& s : order_) {
    registry.counter("profile." + s->name + ".calls")
        .add(static_cast<double>(s->calls));
    registry.counter("profile." + s->name + ".seconds").add(s->total_seconds);
  }
}

}  // namespace bbsim::trace
