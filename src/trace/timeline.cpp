#include "trace/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"
#include "util/sorted_view.hpp"

namespace bbsim::trace {

namespace {

/// Virtual seconds -> Chrome trace-event microseconds.
double us(double seconds) { return seconds * 1e6; }

/// Greedy first-fit interval packing: spans must arrive sorted by start
/// time; each gets the lowest lane whose previous span already ended.
/// Deterministic and O(n * lanes).
class LaneAllocator {
 public:
  std::size_t place(double start, double end) {
    for (std::size_t lane = 0; lane < lane_end_.size(); ++lane) {
      if (lane_end_[lane] <= start) {
        lane_end_[lane] = end;
        return lane;
      }
    }
    lane_end_.push_back(end);
    return lane_end_.size() - 1;
  }
  std::size_t lanes() const { return lane_end_.size(); }

 private:
  std::vector<double> lane_end_;
};

json::Value meta_event(const char* what, std::size_t pid, std::size_t tid,
                       const std::string& value) {
  json::Object e;
  e.set("ph", "M");
  e.set("name", what);
  e.set("pid", pid);
  e.set("tid", tid);
  json::Object args;
  args.set("name", value);
  e.set("args", json::Value(std::move(args)));
  return json::Value(std::move(e));
}

json::Value sort_event(const char* what, std::size_t pid, std::size_t tid,
                       std::size_t index) {
  json::Object e;
  e.set("ph", "M");
  e.set("name", what);
  e.set("pid", pid);
  e.set("tid", tid);
  json::Object args;
  args.set("sort_index", index);
  e.set("args", json::Value(std::move(args)));
  return json::Value(std::move(e));
}

json::Value complete_event(const std::string& name, const std::string& cat,
                           std::size_t pid, std::size_t tid, double t_start,
                           double t_end, json::Object args) {
  json::Object e;
  e.set("ph", "X");
  e.set("name", name);
  e.set("cat", cat);
  e.set("pid", pid);
  e.set("tid", tid);
  e.set("ts", us(t_start));
  // us(end) - us(start), not us(end - start): ts + dur must land on the next
  // span's ts exactly (lanes are packed back-to-back in seconds, and the two
  // roundings would otherwise disagree by an ulp).
  e.set("dur", std::max(0.0, us(t_end) - us(t_start)));
  e.set("args", json::Value(std::move(args)));
  return json::Value(std::move(e));
}

}  // namespace

TrackId TimelineRecorder::counter_track(const std::string& name,
                                        const std::string& unit) {
  for (std::size_t i = 0; i < timeline_.counters.size(); ++i) {
    if (timeline_.counters[i].name == name) return i;
  }
  timeline_.counters.push_back(CounterTrack{name, unit, {}});
  return timeline_.counters.size() - 1;
}

void TimelineRecorder::counter_sample(TrackId track, double time, double value) {
  BBSIM_ASSERT(track < timeline_.counters.size(), "counter_sample: bad track id");
  std::vector<CounterSample>& samples = timeline_.counters[track].samples;
  if (!samples.empty() && samples.back().time == time) {
    samples.back().value = value;  // coalesce within one simulated instant
    return;
  }
  samples.push_back(CounterSample{time, value});
}

void TimelineRecorder::flow_begin(std::uint64_t flow_id, double time,
                                  std::string label, double bytes) {
  FlowSpan span;
  span.label = std::move(label);
  span.t_begin = time;
  span.t_end = time;
  span.bytes = bytes;
  open_flows_[flow_id] = timeline_.flows.size();
  timeline_.flows.push_back(std::move(span));
}

void TimelineRecorder::flow_rate(std::uint64_t flow_id, double time, double rate) {
  const auto it = open_flows_.find(flow_id);
  if (it == open_flows_.end()) return;
  if (!std::isfinite(rate)) return;  // zero-duration flow: no steady rate
  std::vector<RatePoint>& rates = timeline_.flows[it->second].rates;
  if (!rates.empty() && rates.back().rate == rate) return;  // unchanged
  if (!rates.empty() && rates.back().time == time) {
    rates.back().rate = rate;  // re-solve at the same instant: last wins
    return;
  }
  rates.push_back(RatePoint{time, rate});
}

void TimelineRecorder::flow_end(std::uint64_t flow_id, double time, bool completed) {
  const auto it = open_flows_.find(flow_id);
  if (it == open_flows_.end()) return;
  FlowSpan& span = timeline_.flows[it->second];
  span.t_end = time;
  span.completed = completed;
  open_flows_.erase(it);
}

void TimelineRecorder::add_task(TaskSpan span) {
  timeline_.tasks.push_back(std::move(span));
}

void TimelineRecorder::set_host_names(std::vector<std::string> names) {
  timeline_.host_names = std::move(names);
}

void TimelineRecorder::set_wait_spans(bool on) { timeline_.wait_spans = on; }

void TimelineRecorder::add_critpath_link(std::string from_task,
                                         std::string to_task, double time) {
  timeline_.critpath_links.push_back(
      CritLink{std::move(from_task), std::move(to_task), time});
}

Timeline TimelineRecorder::finish() {
  // Close whatever is still open at its last recorded instant (an aborted
  // or crashed run must still export a loadable timeline). Sorted walk:
  // each entry touches a distinct span, but the export must not depend on
  // hash order even incidentally.
  for (const auto& [_, index] : util::sorted_items(open_flows_)) {
    FlowSpan& span = timeline_.flows[index];
    const double last =
        span.rates.empty() ? span.t_begin : span.rates.back().time;
    span.t_end = std::max(span.t_begin, last);
    span.completed = false;
  }
  open_flows_.clear();

  std::stable_sort(timeline_.counters.begin(), timeline_.counters.end(),
                   [](const CounterTrack& a, const CounterTrack& b) {
                     return a.name < b.name;
                   });
  // With wait spans on, a task occupies its lane from t_ready (the wait
  // span's start), so sorting and packing both use that earlier edge.
  const bool waits = timeline_.wait_spans;
  const auto span_begin = [waits](const TaskSpan& t) {
    return waits ? std::min(t.t_ready, t.t_start) : t.t_start;
  };
  std::stable_sort(timeline_.tasks.begin(), timeline_.tasks.end(),
                   [&](const TaskSpan& a, const TaskSpan& b) {
                     if (a.host != b.host) return a.host < b.host;
                     if (span_begin(a) != span_begin(b)) return span_begin(a) < span_begin(b);
                     return a.name < b.name;
                   });

  // Display lanes: per-host first-fit for tasks, global first-fit for flows
  // (flows are already in begin order, which is time order).
  std::size_t current_host = 0;
  LaneAllocator host_lanes;
  for (TaskSpan& t : timeline_.tasks) {
    if (t.host != current_host) {
      current_host = t.host;
      host_lanes = LaneAllocator{};
    }
    t.lane = host_lanes.place(span_begin(t), t.t_end);
  }
  LaneAllocator flow_lanes;
  for (FlowSpan& f : timeline_.flows) {
    f.lane = flow_lanes.place(f.t_begin, f.t_end);
  }

  Timeline out = std::move(timeline_);
  timeline_ = Timeline{};
  return out;
}

json::Value Timeline::to_perfetto() const {
  // Deterministic pid layout: hosts first (pid = host index + 1 -- pid 0 is
  // reserved by some trace consumers), then the flow process, then counters.
  std::size_t max_host = 0;
  for (const TaskSpan& t : tasks) max_host = std::max(max_host, t.host);
  const std::size_t num_hosts = std::max(host_names.size(), max_host + 1);
  const std::size_t flows_pid = num_hosts + 1;
  const std::size_t counters_pid = num_hosts + 2;

  json::Array events;

  // ------------------------------------------------------------- metadata
  std::vector<std::size_t> lanes_per_host(num_hosts, 0);
  for (const TaskSpan& t : tasks) {
    lanes_per_host[t.host] = std::max(lanes_per_host[t.host], t.lane + 1);
  }
  for (std::size_t h = 0; h < num_hosts; ++h) {
    const std::string label =
        h < host_names.size() ? host_names[h] : "host" + std::to_string(h);
    events.push_back(meta_event("process_name", h + 1, 0, label));
    events.push_back(sort_event("process_sort_index", h + 1, 0, h));
    for (std::size_t lane = 0; lane < lanes_per_host[h]; ++lane) {
      events.push_back(
          meta_event("thread_name", h + 1, lane, "core lane " + std::to_string(lane)));
      events.push_back(sort_event("thread_sort_index", h + 1, lane, lane));
    }
  }
  std::size_t flow_lanes = 0;
  for (const FlowSpan& f : flows) flow_lanes = std::max(flow_lanes, f.lane + 1);
  events.push_back(meta_event("process_name", flows_pid, 0, "flows"));
  events.push_back(sort_event("process_sort_index", flows_pid, 0, num_hosts));
  for (std::size_t lane = 0; lane < flow_lanes; ++lane) {
    events.push_back(
        meta_event("thread_name", flows_pid, lane, "flow lane " + std::to_string(lane)));
    events.push_back(sort_event("thread_sort_index", flows_pid, lane, lane));
  }
  if (!counters.empty()) {
    events.push_back(meta_event("process_name", counters_pid, 0, "counters"));
    events.push_back(sort_event("process_sort_index", counters_pid, 0, num_hosts + 1));
  }

  // ------------------------------------------------------------ task spans
  for (const TaskSpan& t : tasks) {
    if (wait_spans && t.t_start > t.t_ready) {
      // Queue delay: ready but not yet started. Emitted before the task
      // span so the lane's events stay in timestamp order; [t_ready,
      // t_start) abuts the task span without overlapping it.
      json::Object wargs;
      wargs.set("t_ready", t.t_ready);
      events.push_back(complete_event("wait " + t.name, "wait", t.host + 1,
                                      t.lane, t.t_ready, t.t_start,
                                      std::move(wargs)));
    }
    json::Object args;
    args.set("cores", t.cores);
    args.set("bytes_read", t.bytes_read);
    args.set("bytes_written", t.bytes_written);
    args.set("t_ready", t.t_ready);
    events.push_back(complete_event(t.name, t.type.empty() ? "task" : t.type,
                                    t.host + 1, t.lane, t.t_start, t.t_end,
                                    std::move(args)));
    // Nested read / compute / write phase spans (paper Figure 5's
    // breakdown); zero-length phases are omitted.
    const struct {
      const char* name;
      double begin;
      double end;
    } phases[] = {{"read", t.t_start, t.t_reads_done},
                  {"compute", t.t_reads_done, t.t_compute_done},
                  {"write", t.t_compute_done, t.t_end}};
    for (const auto& ph : phases) {
      if (!(ph.end > ph.begin)) continue;
      events.push_back(complete_event(ph.name, "phase", t.host + 1, t.lane,
                                      ph.begin, ph.end, json::Object{}));
    }
  }

  // ------------------------------------------------------------ flow spans
  for (const FlowSpan& f : flows) {
    json::Object args;
    args.set("bytes", f.bytes);
    args.set("completed", f.completed);
    args.set("mean_rate", f.mean_rate());
    json::Array rates;
    for (const RatePoint& rp : f.rates) {
      json::Array point;
      point.push_back(json::Value(rp.time));
      point.push_back(json::Value(rp.rate));
      rates.push_back(json::Value(std::move(point)));
    }
    args.set("rates", json::Value(std::move(rates)));
    events.push_back(complete_event(f.label.empty() ? "flow" : f.label, "flow",
                                    flows_pid, f.lane, f.t_begin, f.t_end,
                                    std::move(args)));
  }

  // --------------------------------------------- critical-path flow events
  // One "s"/"f" pair per causal edge of the critical path: the arrow leaves
  // the upstream task's span and lands on the downstream one, so the path
  // reads across lanes in the Perfetto UI. Binding point "e" attaches the
  // finish to the enclosing slice rather than the next one.
  if (!critpath_links.empty()) {
    std::map<std::string, const TaskSpan*> span_of;
    for (const TaskSpan& t : tasks) span_of.emplace(t.name, &t);
    std::size_t link_id = 0;
    for (const CritLink& link : critpath_links) {
      const auto from = span_of.find(link.from_task);
      const auto to = span_of.find(link.to_task);
      if (from == span_of.end() || to == span_of.end()) continue;
      ++link_id;
      json::Object start;
      start.set("ph", "s");
      start.set("id", link_id);
      start.set("name", "critical path");
      start.set("cat", "critpath");
      start.set("pid", from->second->host + 1);
      start.set("tid", from->second->lane);
      // Clamp inside the upstream span so the arrow anchors to it.
      start.set("ts", us(std::min(link.time, from->second->t_end)));
      events.push_back(json::Value(std::move(start)));
      json::Object finish;
      finish.set("ph", "f");
      finish.set("bp", "e");
      finish.set("id", link_id);
      finish.set("name", "critical path");
      finish.set("cat", "critpath");
      finish.set("pid", to->second->host + 1);
      finish.set("tid", to->second->lane);
      finish.set("ts", us(std::max(link.time, to->second->t_start)));
      events.push_back(json::Value(std::move(finish)));
    }
  }

  // --------------------------------------------------------- counter tracks
  for (const CounterTrack& track : counters) {
    for (const CounterSample& s : track.samples) {
      json::Object e;
      e.set("ph", "C");
      e.set("name", track.name);
      e.set("pid", counters_pid);
      e.set("tid", 0);
      e.set("ts", us(s.time));
      json::Object args;
      args.set("value", s.value);
      e.set("args", json::Value(std::move(args)));
      events.push_back(json::Value(std::move(e)));
    }
  }

  json::Object root;
  root.set("traceEvents", json::Value(std::move(events)));
  root.set("displayTimeUnit", "ms");
  json::Object other;
  other.set("schema", "bbsim.timeline.v1");
  other.set("time_unit", "virtual microseconds");
  root.set("otherData", json::Value(std::move(other)));
  return json::Value(std::move(root));
}

}  // namespace bbsim::trace
