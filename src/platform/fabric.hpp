// bbsim -- Fabric: a live instance of a platform.
//
// Fabric owns the event engine and the flow manager, and materialises every
// capacity in the PlatformSpec as a flow resource:
//   - per host: NIC up / NIC down
//   - per storage node: disk read channel, disk write channel,
//                       link up (to storage), link down (from storage)
//   - per storage service: one metadata resource (ops/second)
//
// Storage services (src/storage) compose these ids into operation paths.
#pragma once

#include <memory>
#include <vector>

#include "flow/manager.hpp"
#include "platform/spec.hpp"
#include "sim/engine.hpp"

namespace bbsim::platform {

/// Flow-resource handles for one storage service.
struct StorageResources {
  std::vector<flow::ResourceId> disk_read;   ///< one per storage node
  std::vector<flow::ResourceId> disk_write;  ///< one per storage node
  std::vector<flow::ResourceId> link_up;     ///< host/fabric -> storage node
  std::vector<flow::ResourceId> link_down;   ///< storage node -> host/fabric
  flow::ResourceId metadata = 0;             ///< ops/second server
};

/// Flow-resource handles for one compute host.
struct HostResources {
  flow::ResourceId nic_up = 0;
  flow::ResourceId nic_down = 0;
};

class Fabric {
 public:
  /// Validates the spec and builds all resources at time zero.
  explicit Fabric(PlatformSpec spec);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Engine& engine() { return engine_; }
  flow::FlowManager& flows() { return flows_; }
  const PlatformSpec& spec() const { return spec_; }

  const HostResources& host_resources(std::size_t host_idx) const;
  const StorageResources& storage_resources(std::size_t storage_idx) const;

  /// Uniform interference hook: scale one storage service's link and disk
  /// capacities by `factor` (1.0 = nominal). Used by the testbed to model
  /// background load from other jobs on shared resources.
  void scale_storage_capacity(std::size_t storage_idx, double factor);

 private:
  PlatformSpec spec_;
  sim::Engine engine_;
  flow::FlowManager flows_;
  std::vector<HostResources> host_res_;
  std::vector<StorageResources> storage_res_;
};

}  // namespace bbsim::platform
