// bbsim -- platform presets calibrated from the paper's Table I.
//
//               | core speed        | BB net   | BB disk  | PFS net  | PFS disk
//   Cori   [11] | 36.80 GFlop/s/core| 800 MB/s | 950 MB/s | 1.0 GB/s | 100 MB/s
//   Summit [12] | 49.12 GFlop/s/core| 6.5 GB/s | 3.3 GB/s | 2.1 GB/s | 100 MB/s
//
// Cori hosts have 32 Haswell cores (the paper uses the Haswell partition);
// Summit hosts have 42 usable POWER9 cores. BB node capacity: 6.4 TB per
// Cori DataWarp node, 1.6 TB per Summit NVMe device (Section III-A).
#pragma once

#include "platform/spec.hpp"

namespace bbsim::platform {

/// Options beyond Table I that presets expose for sweeps/ablations.
struct PresetOptions {
  int compute_nodes = 1;
  int bb_nodes = 1;               ///< shared-BB nodes (Cori only)
  BBMode bb_mode = BBMode::Private;  ///< Cori DataWarp mode
};

/// Cori-like platform: shared burst buffer on dedicated nodes.
PlatformSpec cori_platform(const PresetOptions& opt = {});

/// Summit-like platform: node-local NVMe burst buffer per compute node.
PlatformSpec summit_platform(const PresetOptions& opt = {});

/// Table I values as named constants (bytes/s and flop/s).
namespace table1 {
inline constexpr double kCoriCoreSpeed = 36.80e9;
inline constexpr double kCoriBBNet = 800e6;
inline constexpr double kCoriBBDisk = 950e6;
inline constexpr double kCoriPFSNet = 1.0e9;
inline constexpr double kCoriPFSDisk = 100e6;
inline constexpr int kCoriCoresPerNode = 32;

inline constexpr double kSummitCoreSpeed = 49.12e9;
inline constexpr double kSummitBBNet = 6.5e9;
inline constexpr double kSummitBBDisk = 3.3e9;
inline constexpr double kSummitPFSNet = 2.1e9;
inline constexpr double kSummitPFSDisk = 100e6;
inline constexpr int kSummitCoresPerNode = 42;
}  // namespace table1

}  // namespace bbsim::platform
