#include "platform/spec.hpp"

#include <set>

#include "util/strings.hpp"

namespace bbsim::platform {

using util::ConfigError;
using util::NotFoundError;

const char* to_string(StorageKind kind) {
  switch (kind) {
    case StorageKind::PFS: return "pfs";
    case StorageKind::SharedBB: return "shared_bb";
    case StorageKind::NodeLocalBB: return "node_local_bb";
  }
  return "?";
}

const char* to_string(BBMode mode) {
  switch (mode) {
    case BBMode::Private: return "private";
    case BBMode::Striped: return "striped";
  }
  return "?";
}

StorageKind storage_kind_from_string(const std::string& text) {
  const std::string t = util::to_lower(text);
  if (t == "pfs") return StorageKind::PFS;
  if (t == "shared_bb" || t == "shared") return StorageKind::SharedBB;
  if (t == "node_local_bb" || t == "node_local" || t == "on_node") {
    return StorageKind::NodeLocalBB;
  }
  throw ConfigError("unknown storage kind '" + text + "'");
}

BBMode bb_mode_from_string(const std::string& text) {
  const std::string t = util::to_lower(text);
  if (t == "private") return BBMode::Private;
  if (t == "striped" || t == "shared") return BBMode::Striped;
  throw ConfigError("unknown burst buffer mode '" + text + "'");
}

std::size_t PlatformSpec::host_index(const std::string& host_name) const {
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts[i].name == host_name) return i;
  }
  throw NotFoundError("host '" + host_name + "' in platform '" + name + "'");
}

std::size_t PlatformSpec::storage_index(const std::string& storage_name) const {
  for (std::size_t i = 0; i < storage.size(); ++i) {
    if (storage[i].name == storage_name) return i;
  }
  throw NotFoundError("storage '" + storage_name + "' in platform '" + name + "'");
}

std::size_t PlatformSpec::find_kind(StorageKind kind) const {
  for (std::size_t i = 0; i < storage.size(); ++i) {
    if (storage[i].kind == kind) return i;
  }
  return npos;
}

int PlatformSpec::total_cores() const {
  int total = 0;
  for (const HostSpec& h : hosts) total += h.cores;
  return total;
}

void PlatformSpec::validate_and_normalize() {
  if (hosts.empty()) throw ConfigError("platform '" + name + "' has no hosts");
  std::set<std::string> names;
  for (const HostSpec& h : hosts) {
    if (h.name.empty()) throw ConfigError("host with empty name");
    if (!names.insert(h.name).second) throw ConfigError("duplicate host name '" + h.name + "'");
    if (h.cores <= 0) throw ConfigError("host '" + h.name + "': cores must be > 0");
    if (h.core_speed <= 0) throw ConfigError("host '" + h.name + "': core_speed must be > 0");
    if (h.nic_bw <= 0) throw ConfigError("host '" + h.name + "': nic_bw must be > 0");
  }
  for (StorageSpec& s : storage) {
    if (s.name.empty()) throw ConfigError("storage with empty name");
    if (!names.insert(s.name).second) {
      throw ConfigError("duplicate storage/host name '" + s.name + "'");
    }
    if (s.kind == StorageKind::NodeLocalBB) {
      // One device per compute node by definition.
      s.num_nodes = static_cast<int>(hosts.size());
    }
    if (s.num_nodes <= 0) throw ConfigError("storage '" + s.name + "': num_nodes must be > 0");
    if (s.disk.read_bw <= 0 || s.disk.write_bw <= 0) {
      throw ConfigError("storage '" + s.name + "': disk bandwidths must be > 0");
    }
    if (s.disk.capacity <= 0) {
      throw ConfigError("storage '" + s.name + "': capacity must be > 0");
    }
    if (s.link.bandwidth <= 0) {
      throw ConfigError("storage '" + s.name + "': link bandwidth must be > 0");
    }
    if (s.link.latency < 0 || s.base_latency < 0 || s.stage_latency < 0) {
      throw ConfigError("storage '" + s.name + "': latencies must be >= 0");
    }
    if (s.stream_bw <= 0) {
      throw ConfigError("storage '" + s.name + "': stream_bw must be > 0");
    }
    if (s.metadata_ops_per_sec <= 0) {
      throw ConfigError("storage '" + s.name + "': metadata_ops_per_sec must be > 0");
    }
  }
}

}  // namespace bbsim::platform
