// bbsim -- JSON (de)serialisation of platform descriptions.
//
// The schema mirrors the paper's WRENCH/SimGrid platform files, in JSON:
//
// {
//   "name": "cori",
//   "hosts": [ {"name": "cn000", "cores": 32, "core_speed": "36.8 Gf",
//               "nic_bw": "16 GB/s"} ],
//   "storage": [
//     {"name": "pfs", "kind": "pfs",
//      "disk": {"read_bw": "100 MB/s", "write_bw": "100 MB/s"},
//      "link": {"bandwidth": "1 GB/s", "latency_ms": 0.5}},
//     {"name": "bb", "kind": "shared_bb", "mode": "striped", "num_nodes": 2,
//      "disk": {"read_bw": "950 MB/s", "write_bw": "950 MB/s",
//               "capacity": "6.4 TB"},
//      "link": {"bandwidth": "800 MB/s", "latency_ms": 0.25}}
//   ]
// }
//
// Bandwidths/sizes accept either numbers (bytes, bytes/s, flop/s) or strings
// with unit suffixes. Core speed accepts "Gf" (GFlop/s) style suffixes too.
#pragma once

#include <string>

#include "json/json.hpp"
#include "platform/spec.hpp"

namespace bbsim::platform {

/// Parse a platform from its JSON document. Throws ParseError / ConfigError.
PlatformSpec from_json(const json::Value& doc);

/// Parse a platform from a file on disk.
PlatformSpec load_platform(const std::string& path);

/// Serialise to the schema above (numbers in base units for round-tripping).
json::Value to_json(const PlatformSpec& spec);

/// Write to a file, pretty-printed.
void save_platform(const std::string& path, const PlatformSpec& spec);

}  // namespace bbsim::platform
