#include "platform/fabric.hpp"

#include "util/strings.hpp"

namespace bbsim::platform {

Fabric::Fabric(PlatformSpec spec) : spec_(std::move(spec)), flows_(engine_) {
  spec_.validate_and_normalize();
  flow::Network& net = flows_.network();

  host_res_.reserve(spec_.hosts.size());
  for (const HostSpec& h : spec_.hosts) {
    HostResources r;
    r.nic_up = net.add_resource(h.name + ".nic_up", h.nic_bw);
    r.nic_down = net.add_resource(h.name + ".nic_down", h.nic_bw);
    host_res_.push_back(r);
  }

  storage_res_.reserve(spec_.storage.size());
  for (const StorageSpec& s : spec_.storage) {
    StorageResources r;
    for (int i = 0; i < s.num_nodes; ++i) {
      const std::string base = util::format("%s[%d]", s.name.c_str(), i);
      r.disk_read.push_back(net.add_resource(base + ".disk_read", s.disk.read_bw));
      r.disk_write.push_back(net.add_resource(base + ".disk_write", s.disk.write_bw));
      r.link_up.push_back(net.add_resource(base + ".link_up", s.link.bandwidth));
      r.link_down.push_back(net.add_resource(base + ".link_down", s.link.bandwidth));
    }
    r.metadata = net.add_resource(s.name + ".metadata", s.metadata_ops_per_sec);
    storage_res_.push_back(std::move(r));
  }
}

const HostResources& Fabric::host_resources(std::size_t host_idx) const {
  if (host_idx >= host_res_.size()) {
    throw util::NotFoundError("host index " + std::to_string(host_idx));
  }
  return host_res_[host_idx];
}

const StorageResources& Fabric::storage_resources(std::size_t storage_idx) const {
  if (storage_idx >= storage_res_.size()) {
    throw util::NotFoundError("storage index " + std::to_string(storage_idx));
  }
  return storage_res_[storage_idx];
}

void Fabric::scale_storage_capacity(std::size_t storage_idx, double factor) {
  if (factor <= 0) throw util::InvariantError("capacity scale factor must be > 0");
  const StorageSpec& s = spec_.storage.at(storage_idx);
  const StorageResources& r = storage_resources(storage_idx);
  auto scaled = [factor](double nominal) {
    return nominal == kUnlimited ? kUnlimited : nominal * factor;
  };
  for (std::size_t i = 0; i < r.disk_read.size(); ++i) {
    flows_.set_capacity(r.disk_read[i], scaled(s.disk.read_bw));
    flows_.set_capacity(r.disk_write[i], scaled(s.disk.write_bw));
    flows_.set_capacity(r.link_up[i], scaled(s.link.bandwidth));
    flows_.set_capacity(r.link_down[i], scaled(s.link.bandwidth));
  }
  // Competing jobs also load the metadata server.
  flows_.set_capacity(r.metadata, scaled(s.metadata_ops_per_sec));
}

}  // namespace bbsim::platform
