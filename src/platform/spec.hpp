// bbsim -- platform description (value types).
//
// A PlatformSpec is a pure description of an execution platform: compute
// hosts, storage services (PFS and burst buffers), and the network/disk
// capacities connecting them. It is the C++ analogue of the XML platform
// file the paper's WRENCH simulator consumes. Fabric (fabric.hpp) turns a
// spec into live simulation resources.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bbsim::platform {

inline constexpr double kUnlimited = std::numeric_limits<double>::infinity();

/// Storage architecture kinds (paper Section III-A).
enum class StorageKind {
  PFS,          ///< global parallel file system (e.g. Lustre / GPFS)
  SharedBB,     ///< remote-shared burst buffer on dedicated nodes (Cori)
  NodeLocalBB,  ///< on-node burst buffer, one per compute node (Summit)
};

/// Cray DataWarp allocation modes for the shared architecture (Cori).
enum class BBMode {
  Private,  ///< per-compute-node namespace; only the creating node reads
  Striped,  ///< files striped over BB nodes; any node reads; N:1-optimised
};

const char* to_string(StorageKind kind);
const char* to_string(BBMode mode);
StorageKind storage_kind_from_string(const std::string& text);
BBMode bb_mode_from_string(const std::string& text);

/// A compute host (one "node" of the machine).
struct HostSpec {
  std::string name;
  int cores = 1;
  double core_speed = 1e9;      ///< flop/s per core
  double nic_bw = kUnlimited;   ///< injection bandwidth into the fabric (B/s)
};

/// One storage node's device channels.
struct DiskSpec {
  double read_bw = kUnlimited;   ///< B/s, shared by concurrent reads
  double write_bw = kUnlimited;  ///< B/s, shared by concurrent writes
  double capacity = kUnlimited;  ///< bytes per storage node
};

/// The network attachment of a storage node.
struct LinkSpec {
  double bandwidth = kUnlimited;  ///< B/s each direction (full duplex)
  double latency = 0.0;           ///< seconds, added per operation
};

/// A storage service: the PFS or one burst-buffer deployment.
struct StorageSpec {
  std::string name;
  StorageKind kind = StorageKind::PFS;
  BBMode mode = BBMode::Private;  ///< meaningful only for SharedBB
  /// Number of storage nodes. For NodeLocalBB this is forced to the host
  /// count at validation time (one device per compute node).
  int num_nodes = 1;
  DiskSpec disk;  ///< per storage node
  LinkSpec link;  ///< per storage node attachment (PCIe for NodeLocalBB)
  /// Fixed service-side latency added to every operation (metadata open,
  /// request routing). The paper's simple model leaves this at ~0; the
  /// testbed emulator sets mode-dependent values.
  double base_latency = 0.0;
  /// Per-stream bandwidth ceiling (a single POSIX I/O stream cannot use the
  /// whole device). kUnlimited disables the cap (paper's simple model).
  double stream_bw = kUnlimited;
  /// Metadata server throughput in operations/second; every file operation
  /// consumes one op. kUnlimited disables metadata contention.
  double metadata_ops_per_sec = kUnlimited;
  /// Per-file overhead of the staging API (e.g. Cray DataWarp stage-in
  /// requests), paid once per transferred file on top of the data movement.
  /// Zero for the paper's simple model; the testbed sets shared-BB values.
  double stage_latency = 0.0;
};

/// The whole machine.
struct PlatformSpec {
  std::string name;
  std::vector<HostSpec> hosts;
  std::vector<StorageSpec> storage;

  /// Index of a host by name; throws NotFoundError.
  std::size_t host_index(const std::string& host_name) const;
  /// Index of a storage service by name; throws NotFoundError.
  std::size_t storage_index(const std::string& storage_name) const;
  /// First storage service of the given kind, or npos.
  std::size_t find_kind(StorageKind kind) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  int total_cores() const;

  /// Checks structural consistency (unique names, positive counts/speeds,
  /// node-local BB node count) and normalises NodeLocalBB num_nodes.
  /// Throws ConfigError on violation.
  void validate_and_normalize();
};

}  // namespace bbsim::platform
