#include "platform/presets.hpp"

#include "util/strings.hpp"
#include "util/units.hpp"

namespace bbsim::platform {

namespace {

std::vector<HostSpec> make_hosts(int count, int cores, double core_speed) {
  std::vector<HostSpec> hosts;
  hosts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    HostSpec h;
    h.name = util::format("cn%03d", i);
    h.cores = cores;
    h.core_speed = core_speed;
    // Node injection bandwidth: generous; the storage links are the
    // bottlenecks the paper models (Table I lists no NIC limit).
    h.nic_bw = 16e9;
    hosts.push_back(std::move(h));
  }
  return hosts;
}

}  // namespace

PlatformSpec cori_platform(const PresetOptions& opt) {
  using namespace table1;
  PlatformSpec p;
  p.name = "cori";
  p.hosts = make_hosts(opt.compute_nodes, kCoriCoresPerNode, kCoriCoreSpeed);

  StorageSpec pfs;
  pfs.name = "pfs";
  pfs.kind = StorageKind::PFS;
  pfs.disk = DiskSpec{kCoriPFSDisk, kCoriPFSDisk, kUnlimited};
  pfs.link = LinkSpec{kCoriPFSNet, 0.5e-3};
  p.storage.push_back(pfs);

  StorageSpec bb;
  bb.name = "bb";
  bb.kind = StorageKind::SharedBB;
  bb.mode = opt.bb_mode;
  bb.num_nodes = opt.bb_nodes;
  bb.disk = DiskSpec{kCoriBBDisk, kCoriBBDisk, 6.4 * util::TB};
  bb.link = LinkSpec{kCoriBBNet, 0.25e-3};
  p.storage.push_back(bb);

  p.validate_and_normalize();
  return p;
}

PlatformSpec summit_platform(const PresetOptions& opt) {
  using namespace table1;
  PlatformSpec p;
  p.name = "summit";
  p.hosts = make_hosts(opt.compute_nodes, kSummitCoresPerNode, kSummitCoreSpeed);

  StorageSpec pfs;
  pfs.name = "pfs";
  pfs.kind = StorageKind::PFS;
  pfs.disk = DiskSpec{kSummitPFSDisk, kSummitPFSDisk, kUnlimited};
  pfs.link = LinkSpec{kSummitPFSNet, 0.5e-3};
  p.storage.push_back(pfs);

  StorageSpec bb;
  bb.name = "bb";
  bb.kind = StorageKind::NodeLocalBB;
  // Table I: "network" = NVMe host interface (6.5 GB/s), "disk" = device
  // media throughput (3.3 GB/s). Latency is microseconds (local PCIe).
  bb.disk = DiskSpec{kSummitBBDisk, kSummitBBDisk, 1.6 * util::TB};
  bb.link = LinkSpec{kSummitBBNet, 10e-6};
  p.storage.push_back(bb);

  p.validate_and_normalize();
  return p;
}

}  // namespace bbsim::platform
