#include "platform/platform_json.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace bbsim::platform {

using json::Value;
using util::ParseError;

namespace {

/// A quantity field may be a plain number (base units) or a suffixed string.
double quantity(const Value& obj, const std::string& key, double fallback,
                bool is_rate) {
  if (!obj.is_object()) return fallback;
  const Value* v = obj.as_object().find(key);
  if (v == nullptr) return fallback;
  if (v->is_number()) return v->as_number();
  if (v->is_string()) {
    const std::string& s = v->as_string();
    if (s == "unlimited" || s == "inf") return kUnlimited;
    return is_rate ? util::parse_bandwidth(s) : util::parse_size(s);
  }
  throw ParseError("field '" + key + "' must be a number or unit string");
}

/// Core speed accepts "36.8 Gf" / "36.8 GFlop/s" style strings.
double core_speed_quantity(const Value& obj, const std::string& key, double fallback) {
  if (!obj.is_object()) return fallback;
  const Value* v = obj.as_object().find(key);
  if (v == nullptr) return fallback;
  if (v->is_number()) return v->as_number();
  std::string s = v->as_string();
  // Normalise flop-ish suffixes down to plain SI handled by parse_bandwidth.
  for (const char* suffix : {"Flop/s", "flop/s", "FLOPS", "flops", "f/s", "f"}) {
    const std::string suf(suffix);
    if (util::ends_with(s, suf)) {
      s = s.substr(0, s.size() - suf.size());
      break;
    }
  }
  s = util::trim(s);
  // What remains is "<number> <prefix?>", e.g. "36.8 G".
  return util::parse_size(s);
}

DiskSpec disk_from_json(const Value& v) {
  DiskSpec d;
  d.read_bw = quantity(v, "read_bw", d.read_bw, true);
  d.write_bw = quantity(v, "write_bw", d.write_bw, true);
  d.capacity = quantity(v, "capacity", d.capacity, false);
  return d;
}

LinkSpec link_from_json(const Value& v) {
  LinkSpec l;
  l.bandwidth = quantity(v, "bandwidth", l.bandwidth, true);
  l.latency = v.get_number("latency_ms", l.latency * 1e3) * 1e-3;
  return l;
}

Value number_or_unlimited(double x) {
  if (x == kUnlimited) return Value("unlimited");
  return Value(x);
}

}  // namespace

PlatformSpec from_json(const Value& doc) {
  PlatformSpec p;
  p.name = doc.get_string("name", "unnamed");

  if (!doc.contains("hosts")) throw ParseError("platform: missing 'hosts'");
  for (const Value& h : doc.at("hosts").as_array()) {
    HostSpec host;
    host.name = h.get_string("name", "");
    const std::int64_t count = h.get_int("count", 1);
    host.cores = static_cast<int>(h.get_int("cores", 1));
    host.core_speed = core_speed_quantity(h, "core_speed", host.core_speed);
    host.nic_bw = quantity(h, "nic_bw", host.nic_bw, true);
    if (count == 1) {
      p.hosts.push_back(host);
    } else {
      // "count" expands into name000, name001, ...
      for (std::int64_t i = 0; i < count; ++i) {
        HostSpec copy = host;
        copy.name = util::format("%s%03d", host.name.c_str(), static_cast<int>(i));
        p.hosts.push_back(std::move(copy));
      }
    }
  }

  if (doc.contains("storage")) {
    for (const Value& s : doc.at("storage").as_array()) {
      StorageSpec st;
      st.name = s.get_string("name", "");
      st.kind = storage_kind_from_string(s.get_string("kind", "pfs"));
      st.mode = bb_mode_from_string(s.get_string("mode", "private"));
      st.num_nodes = static_cast<int>(s.get_int("num_nodes", 1));
      if (s.contains("disk")) st.disk = disk_from_json(s.at("disk"));
      if (s.contains("link")) st.link = link_from_json(s.at("link"));
      st.base_latency = s.get_number("base_latency_ms", st.base_latency * 1e3) * 1e-3;
      st.stage_latency = s.get_number("stage_latency_ms", st.stage_latency * 1e3) * 1e-3;
      st.stream_bw = quantity(s, "stream_bw", st.stream_bw, true);
      st.metadata_ops_per_sec = quantity(s, "metadata_ops_per_sec",
                                         st.metadata_ops_per_sec, true);
      p.storage.push_back(std::move(st));
    }
  }

  p.validate_and_normalize();
  return p;
}

PlatformSpec load_platform(const std::string& path) {
  return from_json(json::parse_file(path));
}

Value to_json(const PlatformSpec& spec) {
  json::Object root;
  root.set("name", spec.name);

  json::Array hosts;
  for (const HostSpec& h : spec.hosts) {
    json::Object o;
    o.set("name", h.name);
    o.set("cores", h.cores);
    o.set("core_speed", h.core_speed);
    o.set("nic_bw", number_or_unlimited(h.nic_bw));
    hosts.push_back(Value(std::move(o)));
  }
  root.set("hosts", Value(std::move(hosts)));

  json::Array storage;
  for (const StorageSpec& s : spec.storage) {
    json::Object o;
    o.set("name", s.name);
    o.set("kind", to_string(s.kind));
    if (s.kind == StorageKind::SharedBB) o.set("mode", to_string(s.mode));
    o.set("num_nodes", s.num_nodes);
    json::Object disk;
    disk.set("read_bw", s.disk.read_bw);
    disk.set("write_bw", s.disk.write_bw);
    disk.set("capacity", number_or_unlimited(s.disk.capacity));
    o.set("disk", Value(std::move(disk)));
    json::Object link;
    link.set("bandwidth", s.link.bandwidth);
    link.set("latency_ms", s.link.latency * 1e3);
    o.set("link", Value(std::move(link)));
    o.set("base_latency_ms", s.base_latency * 1e3);
    o.set("stage_latency_ms", s.stage_latency * 1e3);
    o.set("stream_bw", number_or_unlimited(s.stream_bw));
    o.set("metadata_ops_per_sec", number_or_unlimited(s.metadata_ops_per_sec));
    storage.push_back(Value(std::move(o)));
  }
  root.set("storage", Value(std::move(storage)));
  return Value(std::move(root));
}

void save_platform(const std::string& path, const PlatformSpec& spec) {
  json::write_file(path, to_json(spec));
}

}  // namespace bbsim::platform
