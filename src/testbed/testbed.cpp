#include "testbed/testbed.hpp"

#include <memory>
#include <utility>

#include "sweep/runner.hpp"
#include "util/error.hpp"

namespace bbsim::testbed {

using platform::BBMode;
using platform::PlatformSpec;
using platform::PresetOptions;
using platform::StorageKind;

const char* to_string(System system) {
  switch (system) {
    case System::CoriPrivate: return "cori-private";
    case System::CoriStriped: return "cori-striped";
    case System::Summit: return "summit";
  }
  return "?";
}

namespace {

/// Physical-truth fidelity constants. These are bbsim calibration choices
/// (the paper publishes figure shapes, not microscopic parameters); they
/// were tuned so the characterization benches reproduce the published
/// orderings and ratios. See EXPERIMENTS.md for the resulting numbers.
struct FidelityConstants {
  // Burst buffer overlays
  int bb_nodes = 1;              ///< testbed BB node count (striping targets)
  double bb_stream_bw = 0.0;     ///< per-stream cap (B/s)
  double bb_base_latency = 0.0;  ///< per-op service latency (s)
  double bb_metadata_ops = 0.0;  ///< metadata server ops/s
  double bb_stage_latency = 0.0; ///< per-file staging-API overhead (s)
  /// Effective-bandwidth factor on the BB's Table I capacity: the POSIX
  /// workflow never reaches peak on the shared design (paper finding (iii):
  /// "the effective bandwidth ... is well below the peak").
  double bb_effective_scale = 1.0;
  // PFS overlays
  double pfs_stream_bw = 0.0;
  double pfs_base_latency = 0.0;
  double pfs_metadata_ops = 0.0;
  NoiseProfile noise;
};

FidelityConstants constants_for(System system) {
  FidelityConstants c;
  switch (system) {
    case System::CoriPrivate:
      c.bb_nodes = 1;
      c.bb_stream_bw = 280e6;
      c.bb_base_latency = 4e-3;
      c.bb_metadata_ops = 500.0;
      // Cray DataWarp stage-in requests carry a documented per-file
      // overhead; this is what separates the shared designs from a plain
      // cp to the node-local NVMe in paper Figure 4 (up to ~5x).
      c.bb_stage_latency = 0.85;
      c.bb_effective_scale = 0.625;  // ~500 MB/s achieved of the 800 peak
      c.pfs_stream_bw = 150e6;
      c.pfs_base_latency = 10e-3;
      c.pfs_metadata_ops = 200.0;
      c.noise = NoiseProfile{0.35, 0.05, 0.03, 0.015};
      break;
    case System::CoriStriped:
      c.bb_nodes = 4;
      c.bb_stream_bw = 100e6;
      c.bb_base_latency = 100e-3;
      c.bb_metadata_ops = 9.0;
      c.bb_stage_latency = 0.7;
      c.pfs_stream_bw = 150e6;
      c.pfs_base_latency = 10e-3;
      c.pfs_metadata_ops = 200.0;
      c.noise = NoiseProfile{0.55, 0.18, 0.16, 0.02};
      break;
    case System::Summit:
      c.bb_nodes = 1;  // per-host; normalised to host count by validation
      c.bb_stream_bw = 1.2e9;
      c.bb_base_latency = 0.15e-3;
      c.bb_metadata_ops = 5000.0;
      c.pfs_stream_bw = 150e6;
      c.pfs_base_latency = 8e-3;
      c.pfs_metadata_ops = 400.0;
      c.noise = NoiseProfile{0.10, 0.02, 0.01, 0.01};
      break;
  }
  return c;
}

}  // namespace

PlatformSpec paper_platform(System system, int compute_nodes) {
  PresetOptions opt;
  opt.compute_nodes = compute_nodes;
  switch (system) {
    case System::CoriPrivate:
      opt.bb_mode = BBMode::Private;
      return platform::cori_platform(opt);
    case System::CoriStriped:
      opt.bb_mode = BBMode::Striped;
      return platform::cori_platform(opt);
    case System::Summit:
      return platform::summit_platform(opt);
  }
  throw util::ConfigError("unknown system");
}

PlatformSpec testbed_platform(System system, const TestbedOptions& opt) {
  const FidelityConstants c = constants_for(system);
  PresetOptions popt;
  popt.compute_nodes = opt.compute_nodes;
  popt.bb_nodes = c.bb_nodes;
  PlatformSpec p;
  switch (system) {
    case System::CoriPrivate:
      popt.bb_mode = BBMode::Private;
      p = platform::cori_platform(popt);
      break;
    case System::CoriStriped:
      popt.bb_mode = BBMode::Striped;
      p = platform::cori_platform(popt);
      break;
    case System::Summit:
      p = platform::summit_platform(popt);
      break;
  }
  for (platform::StorageSpec& s : p.storage) {
    if (s.kind == StorageKind::PFS) {
      s.stream_bw = c.pfs_stream_bw;
      s.base_latency = c.pfs_base_latency;
      s.metadata_ops_per_sec = c.pfs_metadata_ops;
    } else {
      s.stream_bw = c.bb_stream_bw;
      s.base_latency = c.bb_base_latency;
      s.metadata_ops_per_sec = c.bb_metadata_ops;
      s.stage_latency = c.bb_stage_latency;
      if (s.kind == StorageKind::SharedBB) {
        s.disk.read_bw *= c.bb_effective_scale;
        s.disk.write_bw *= c.bb_effective_scale;
        s.link.bandwidth *= c.bb_effective_scale;
        if (s.num_nodes > 1) {
          // Keep the aggregate at Table I: the paper's 800/950 MB/s are
          // allocation-level figures; the testbed spreads them over stripes.
          s.disk.read_bw /= s.num_nodes;
          s.disk.write_bw /= s.num_nodes;
          s.link.bandwidth /= s.num_nodes;
        }
      }
      if (s.kind == StorageKind::NodeLocalBB) {
        // Device truth: PM1725a reads ~6 GB/s, writes ~2.1 GB/s
        // (Section III-A2); Table I's symmetric 3.3 GB/s is what the
        // simple model sees.
        s.disk.read_bw = 6.0e9;
        s.disk.write_bw = 2.1e9;
      }
    }
  }
  p.validate_and_normalize();
  return p;
}

Testbed::Testbed(System system, TestbedOptions opt)
    : system_(system),
      opt_(opt),
      platform_(testbed_platform(system, opt)),
      noise_(constants_for(system).noise) {
  if (opt_.repetitions < 1) throw util::ConfigError("testbed: repetitions must be >= 1");
}

exec::Result Testbed::run_once(const wf::Workflow& workflow,
                               const exec::ExecutionConfig& config,
                               unsigned long long salt,
                               double staged_fraction_hint) const {
  util::Rng base(util::mix64(opt_.seed) ^ util::mix64(salt + 1));

  // Between-campaign drift: deterministic per (system, campaign), shared by
  // every repetition of the campaign.
  util::Rng campaign_rng(util::mix64(0xCA3Bull) ^
                         util::mix64(static_cast<unsigned long long>(system_) * 131 +
                                     static_cast<unsigned long long>(opt_.campaign)));
  const double compute_drift =
      opt_.campaign == 0 ? 1.0 : campaign_rng.truncated_normal(1.0, 0.05, 0.88, 1.12);
  const double bw_drift =
      opt_.campaign == 0 ? 1.0 : campaign_rng.truncated_normal(1.0, 0.09, 0.75, 1.25);

  PlatformSpec plat = platform_;
  exec::ExecutionConfig cfg = config;

  // Per-task compute jitter (always carries the campaign drift).
  {
    auto compute_rng = std::make_shared<util::Rng>(base.fork("compute"));
    const double sigma = opt_.noise ? noise_.compute_sigma : 0.0;
    cfg.compute_noise = [compute_rng, sigma, compute_drift](const wf::Task&,
                                                            std::size_t) {
      return compute_drift *
             (sigma > 0 ? compute_rng->truncated_normal(1.0, sigma, 0.85, 1.25) : 1.0);
    };
  }

  exec::Simulation simulation(std::move(plat), workflow, cfg);

  {
    // Per-repetition background load on the shared services: competing jobs
    // eat a slice of the nominal capacity (paper Section III-D: "BBs are
    // shared across user jobs").
    util::Rng load_rng = base.fork("load");
    for (std::size_t s = 0; s < simulation.fabric().spec().storage.size(); ++s) {
      const bool shared_service =
          simulation.fabric().spec().storage[s].kind != StorageKind::NodeLocalBB;
      const double sigma = shared_service ? noise_.run_load_sigma : noise_.run_load_sigma / 4;
      const double factor =
          bw_drift * (opt_.noise ? load_rng.truncated_normal(1.0, sigma, 0.6, 1.15) : 1.0);
      simulation.fabric().scale_storage_capacity(s, factor);
    }
  }

  if (opt_.noise) {

    // Per-operation latency/cap jitter, plus the striped stage-in anomaly.
    auto op_rng = std::make_shared<util::Rng>(base.fork("ops"));
    const NoiseProfile prof = noise_;
    const bool anomaly = opt_.striped_anomaly && system_ == System::CoriStriped &&
                         staged_fraction_hint >= 0.70 && staged_fraction_hint < 0.80;
    double base_latency = 0.0;  // the BB's service latency drives the jitter scale
    for (const platform::StorageSpec& s : platform_.storage) {
      if (s.kind != StorageKind::PFS) base_latency = s.base_latency;
    }
    simulation.storage().set_perturbation(
        [op_rng, prof, anomaly, base_latency](const storage::FileRef&, bool is_write,
                                              std::size_t) {
          storage::IoPerturbation p;
          // Log-normal tail on the service latency (metadata jitter).
          p.extra_latency = base_latency * (op_rng->lognormal_mean(1.0, prof.latency_sigma) - 1.0);
          if (p.extra_latency < 0.0) p.extra_latency = 0.0;
          if (anomaly && is_write) {
            // The reproducible threshold behaviour around 75% staged
            // (paper Figure 4): writes into the striped allocation stall.
            p.extra_latency += base_latency * 6.0;
          }
          p.rate_cap_scale = op_rng->truncated_normal(1.0, prof.cap_sigma, 0.5, 1.4);
          return p;
        });
  }

  return simulation.run();
}

std::vector<exec::Result> Testbed::run_repetitions(const wf::Workflow& workflow,
                                                   const exec::ExecutionConfig& config,
                                                   double staged_fraction_hint,
                                                   int jobs) const {
  if (jobs == 1) {
    std::vector<exec::Result> out;
    out.reserve(static_cast<std::size_t>(opt_.repetitions));
    for (int rep = 0; rep < opt_.repetitions; ++rep) {
      out.push_back(run_once(workflow, config, static_cast<unsigned long long>(rep),
                             staged_fraction_hint));
    }
    return out;
  }
  // Each repetition is an isolated simulation stack seeded by its index, so
  // the result vector is identical to the serial path for any job count.
  std::vector<sweep::RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(opt_.repetitions));
  for (int rep = 0; rep < opt_.repetitions; ++rep) {
    specs.push_back(sweep::RunSpec{
        "rep" + std::to_string(rep),
        [this, &workflow, &config, rep, staged_fraction_hint] {
          return run_once(workflow, config, static_cast<unsigned long long>(rep),
                          staged_fraction_hint);
        }});
  }
  sweep::SweepOptions sopt;
  sopt.jobs = jobs;
  std::vector<sweep::RunOutcome> outcomes = sweep::SweepRunner(sopt).run(specs);
  std::vector<exec::Result> out;
  out.reserve(outcomes.size());
  for (sweep::RunOutcome& o : outcomes) {
    if (!o.ok) throw util::InvariantError("testbed repetition failed: " + o.error);
    out.push_back(std::move(o.result));
  }
  return out;
}

MeasuredStats Testbed::summarize(const std::vector<exec::Result>& results) {
  if (results.empty()) throw util::InvariantError("summarize: no results");
  MeasuredStats m;
  std::vector<double> makespans;
  std::vector<double> stageins;
  std::map<std::string, std::vector<double>> durations;
  std::map<std::string, std::vector<double>> lambdas;
  for (const exec::Result& r : results) {
    makespans.push_back(r.makespan);
    stageins.push_back(r.stage_in_duration);
    for (const auto& [_, rec] : r.tasks) {
      durations[rec.type].push_back(rec.duration());
      lambdas[rec.type].push_back(rec.lambda_io());
    }
  }
  m.makespan = analysis::describe(makespans);
  m.stage_in = analysis::describe(stageins);
  for (const auto& [type, sample] : durations) {
    m.duration_by_type[type] = analysis::describe(sample);
  }
  for (const auto& [type, sample] : lambdas) {
    m.lambda_by_type[type] = analysis::describe(sample).mean;
  }
  return m;
}

std::map<std::string, model::TaskObservation> Testbed::observations(
    const std::vector<exec::Result>& results) {
  if (results.empty()) throw util::InvariantError("observations: no results");
  std::map<std::string, std::vector<double>> durations;
  std::map<std::string, std::vector<double>> lambdas;
  std::map<std::string, int> cores;
  for (const exec::Result& r : results) {
    for (const auto& [_, rec] : r.tasks) {
      if (rec.type == "stage_in") continue;
      durations[rec.type].push_back(rec.duration());
      lambdas[rec.type].push_back(rec.lambda_io());
      cores[rec.type] = rec.cores;
    }
  }
  std::map<std::string, model::TaskObservation> out;
  for (const auto& [type, sample] : durations) {
    model::TaskObservation obs;
    obs.observed_time = analysis::describe(sample).mean;
    obs.lambda_io = analysis::describe(lambdas[type]).mean;
    obs.observed_cores = cores[type];
    obs.alpha = 0.0;  // the paper's perfect-speedup assumption (Eq. (4))
    out[type] = obs;
  }
  return out;
}

}  // namespace bbsim::testbed
