// bbsim -- the synthetic testbed emulator: our stand-in for real runs on
// Cori and Summit (paper Section III).
//
// The paper validates its simple model against measurements on real
// machines. Those machines are not available here, so the testbed plays
// the role of "messy reality": it runs the same execution engine on the
// same Table-I platform, but layers on the effects the simple model
// deliberately omits --
//
//   * per-stream POSIX bandwidth caps (effective bandwidth far below peak,
//     paper finding (iii));
//   * per-operation base latency, much larger for the striped mode;
//   * a finite metadata server; striped files pay one op per stripe
//     (the 1:N-vs-N:1 pathology of paper Figure 5);
//   * log-normal latency jitter, per-flow cap jitter, a per-repetition
//     background-load factor on shared services (the variability envelopes
//     of Figures 4 and 8), and compute-time noise;
//   * the reproducible stage-in anomaly of the striped mode at 75% staged
//     (paper Figure 4);
//   * Summit NVMe read/write asymmetry (6.0 / 2.1 GB/s device truth vs.
//     the symmetric 3.3 GB/s the paper's Table I feeds the simple model).
//
// Validation benches (Figures 10/11) run both the testbed ("measured") and
// the plain Table-I engine ("simulated") and report relative errors exactly
// as the paper does.
#pragma once

#include <map>
#include <vector>

#include "analysis/stats.hpp"
#include "exec/engine.hpp"
#include "model/calibration.hpp"
#include "platform/presets.hpp"
#include "util/rng.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::testbed {

/// The three experimental configurations of the paper.
enum class System { CoriPrivate, CoriStriped, Summit };

const char* to_string(System system);

/// Stochastic fidelity knobs (per system; see defaults in testbed.cpp).
struct NoiseProfile {
  double latency_sigma = 0.3;      ///< log-normal sigma on per-op latency
  double cap_sigma = 0.08;         ///< per-flow rate-cap jitter (truncated normal)
  double run_load_sigma = 0.10;    ///< per-repetition background-load factor sigma
  double compute_sigma = 0.03;     ///< per-task compute-time jitter
};

struct TestbedOptions {
  int compute_nodes = 1;
  unsigned long long seed = 42;
  int repetitions = 15;  ///< the paper averages over 15 executions
  bool noise = true;     ///< disable for deterministic unit tests
  /// Reproduce the striped stage-in anomaly around 75% staged (Figure 4).
  bool striped_anomaly = true;
  /// Measurement-campaign label. Real characterization and validation runs
  /// happen weeks apart on machines whose software and background load have
  /// drifted (the paper explicitly notes this for its Figure 14 reference
  /// data). Different campaign labels apply a small deterministic drift to
  /// compute speed and storage bandwidth, so calibrating on one campaign
  /// and validating on another carries a realistic systematic error.
  int campaign = 0;
};

/// The platform the testbed physically "is": Table I values plus the
/// fidelity overlays (caps, latencies, metadata rates, NVMe asymmetry).
platform::PlatformSpec testbed_platform(System system, const TestbedOptions& opt);

/// The platform the *paper's simple model* sees: plain Table I, one BB
/// node, no caps/latency/metadata limits (Section IV-A).
platform::PlatformSpec paper_platform(System system, int compute_nodes = 1);

/// Summary over a set of repetitions.
struct MeasuredStats {
  analysis::Stats makespan;
  analysis::Stats stage_in;
  std::map<std::string, analysis::Stats> duration_by_type;
  std::map<std::string, double> lambda_by_type;  ///< mean observed lambda_io
};

class Testbed {
 public:
  Testbed(System system, TestbedOptions opt);

  System system() const { return system_; }
  const TestbedOptions& options() const { return opt_; }
  const platform::PlatformSpec& platform() const { return platform_; }

  /// Run `opt.repetitions` perturbed executions. `staged_fraction_hint`
  /// tells the emulator the fraction of input files being staged so the
  /// striped-mode anomaly can trigger (pass the sweep value; -1 = unknown).
  /// `jobs` runs repetitions concurrently through sweep::SweepRunner
  /// (1 = serial, 0 = one worker per hardware thread); every repetition is
  /// seeded by its index, so the results are identical for any job count.
  std::vector<exec::Result> run_repetitions(const wf::Workflow& workflow,
                                            const exec::ExecutionConfig& config,
                                            double staged_fraction_hint = -1.0,
                                            int jobs = 1) const;

  /// Run one repetition with an explicit seed salt.
  exec::Result run_once(const wf::Workflow& workflow, const exec::ExecutionConfig& config,
                        unsigned long long salt, double staged_fraction_hint = -1.0) const;

  static MeasuredStats summarize(const std::vector<exec::Result>& results);

  /// Derive per-type calibration observations -- mean T(p) and lambda_io --
  /// the way the paper derives them from real measurements (alpha = 0).
  static std::map<std::string, model::TaskObservation> observations(
      const std::vector<exec::Result>& results);

 private:
  System system_;
  TestbedOptions opt_;
  platform::PlatformSpec platform_;
  NoiseProfile noise_;
};

}  // namespace bbsim::testbed
