/// \file
/// bbsim::testbed -- I/O characterization reports (paper Section III).
///
/// The Section III study derives per-task-type timing/lambda/bandwidth
/// aggregates from a set of repeated executions, plus per-storage-service
/// counters (the toolkit behind Figures 5, 6 and 9). The inputs are plain
/// exec::Result vectors -- produced serially or by a parallel
/// sweep::SweepRunner campaign; the overloads taking sweep::RunOutcome
/// consume a sweep directly, skipping failed runs and appending a failure
/// roster to the report.
#pragma once

#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "exec/trace.hpp"
#include "sweep/runner.hpp"

namespace bbsim::testbed {

/// Per-type characterization table:
///   type | count | duration mean±std | lambda_io | bytes R+W | perceived bw
analysis::Table characterization_table(const std::vector<exec::Result>& results);

/// Per-storage-service counters averaged over the repetitions:
///   service | bytes served | busy time | device bandwidth
analysis::Table storage_table(const std::vector<exec::Result>& results);

/// Renders both tables as a printable report.
std::string characterization_report(const std::vector<exec::Result>& results);

/// The successful results of a sweep, in spec order (failed and skipped
/// runs are dropped).
std::vector<exec::Result> ok_results(const std::vector<sweep::RunOutcome>& outcomes);

/// Characterization over a sweep campaign: the report of the successful
/// runs, followed by one line per failed run. Throws util::InvariantError
/// when no run succeeded.
std::string characterization_report(const std::vector<sweep::RunOutcome>& outcomes);

}  // namespace bbsim::testbed
