// bbsim -- I/O characterization reports, in the spirit of the paper's
// Section III study: per-task-type timing/λ/bandwidth aggregates over a set
// of repetitions, plus per-service counters.
#pragma once

#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "exec/trace.hpp"

namespace bbsim::testbed {

/// Per-type characterization table:
///   type | count | duration mean±std | lambda_io | bytes R+W | perceived bw
analysis::Table characterization_table(const std::vector<exec::Result>& results);

/// Per-storage-service counters averaged over the repetitions:
///   service | bytes served | busy time | device bandwidth
analysis::Table storage_table(const std::vector<exec::Result>& results);

/// Renders both tables as a printable report.
std::string characterization_report(const std::vector<exec::Result>& results);

}  // namespace bbsim::testbed
