#include "testbed/characterize.hpp"

#include <map>

#include "analysis/stats.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace bbsim::testbed {

analysis::Table characterization_table(const std::vector<exec::Result>& results) {
  if (results.empty()) throw util::InvariantError("characterization: no results");
  struct Acc {
    std::vector<double> durations;
    std::vector<double> lambdas;
    double bytes = 0.0;
    double io_time = 0.0;
  };
  std::map<std::string, Acc> by_type;
  for (const exec::Result& r : results) {
    for (const auto& [_, rec] : r.tasks) {
      Acc& a = by_type[rec.type];
      a.durations.push_back(rec.duration());
      a.lambdas.push_back(rec.lambda_io());
      a.bytes += rec.bytes_read + rec.bytes_written;
      a.io_time += rec.io_time();
    }
  }
  analysis::Table t({"type", "tasks", "duration (s)", "lambda_io", "bytes/task",
                     "perceived bw"});
  for (const auto& [type, a] : by_type) {
    const analysis::Stats d = analysis::describe(a.durations);
    const analysis::Stats l = analysis::describe(a.lambdas);
    const double per_task_bytes = a.bytes / static_cast<double>(a.durations.size());
    const double bw = a.io_time > 0 ? a.bytes / a.io_time : 0.0;
    t.add_row({type, std::to_string(a.durations.size()),
               util::format("%.2f ± %.2f", d.mean, d.stddev),
               util::format("%.3f", l.mean),
               util::format_size(per_task_bytes),
               util::format_bandwidth(bw)});
  }
  return t;
}

analysis::Table storage_table(const std::vector<exec::Result>& results) {
  if (results.empty()) throw util::InvariantError("storage_table: no results");
  struct Acc {
    double bytes = 0.0;
    double busy = 0.0;
    int n = 0;
  };
  std::map<std::string, Acc> by_service;
  for (const exec::Result& r : results) {
    for (const exec::StorageCounters& s : r.storage) {
      Acc& a = by_service[s.service];
      a.bytes += s.bytes_served;
      a.busy += s.busy_time;
      ++a.n;
    }
  }
  analysis::Table t({"service", "bytes served/run", "busy time/run", "device bw"});
  for (const auto& [service, a] : by_service) {
    const double bytes = a.bytes / a.n;
    const double busy = a.busy / a.n;
    t.add_row({service, util::format_size(bytes), util::format_time(busy),
               util::format_bandwidth(busy > 0 ? bytes / busy : 0.0)});
  }
  return t;
}

std::string characterization_report(const std::vector<exec::Result>& results) {
  std::string out = "per task type:\n";
  out += characterization_table(results).to_string();
  out += "\nper storage service:\n";
  out += storage_table(results).to_string();
  return out;
}

std::vector<exec::Result> ok_results(const std::vector<sweep::RunOutcome>& outcomes) {
  std::vector<exec::Result> results;
  results.reserve(outcomes.size());
  for (const sweep::RunOutcome& o : outcomes) {
    if (o.ok) results.push_back(o.result);
  }
  return results;
}

std::string characterization_report(const std::vector<sweep::RunOutcome>& outcomes) {
  const std::vector<exec::Result> results = ok_results(outcomes);
  if (results.empty()) {
    throw util::InvariantError("characterization: every sweep run failed");
  }
  std::string out = characterization_report(results);
  for (const sweep::RunOutcome& o : outcomes) {
    if (!o.ok && !o.skipped) out += "\nFAILED " + o.name + ": " + o.error;
    if (o.skipped) out += "\nSKIPPED " + o.name;
  }
  return out;
}

}  // namespace bbsim::testbed
