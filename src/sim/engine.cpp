#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "stats/metrics.hpp"
#include "trace/profiler.hpp"
#include "trace/timeline.hpp"

namespace bbsim::sim {

void Engine::set_metrics(stats::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    events_scheduled_ = nullptr;
    events_executed_ = nullptr;
    events_cancelled_ = nullptr;
    queue_depth_ = nullptr;
    return;
  }
  events_scheduled_ = &metrics->counter("sim.events_scheduled");
  events_executed_ = &metrics->counter("sim.events_executed");
  events_cancelled_ = &metrics->counter("sim.events_cancelled");
  queue_depth_ = &metrics->gauge("sim.queue_depth");
}

void Engine::set_timeline(trace::TimelineRecorder* timeline) {
  timeline_ = timeline;
  if (timeline_ != nullptr) {
    queue_track_ = timeline_->counter_track("sim.queue_depth", "events");
  }
}

void Engine::set_profiler(trace::Profiler* profiler) {
  dispatch_profile_ = profiler != nullptr ? profiler->section("sim.dispatch") : nullptr;
}

EventId Engine::schedule_at(Time t, EventHandler fn) {
  // Finiteness first: NaN compares false with everything, so a past-time
  // check alone would blame NaN on "the past" instead of naming it.
  if (!std::isfinite(t)) {
    if (std::isnan(t)) {
      throw util::InvariantError("schedule_at: time is NaN (now=" +
                                 std::to_string(now_) + ")");
    }
    throw util::InvariantError("schedule_at: non-finite time " + std::to_string(t));
  }
  if (t < now_) {
    throw util::InvariantError("schedule_at: time " + std::to_string(t) +
                               " is in the past (now=" + std::to_string(now_) + ")");
  }
  const EventId id = next_id_++;
  queue_.push(EventRecord{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) observer_->on_scheduled(id, now_, t));
  if (events_scheduled_ != nullptr) {
    events_scheduled_->add(1.0);
    queue_depth_->set(static_cast<double>(pending_count()));
  }
  if (timeline_ != nullptr) {
    timeline_->counter_sample(queue_track_, now_,
                              static_cast<double>(pending_count()));
  }
  return id;
}

bool Engine::cancel(EventId id) {
  if (handlers_.count(id) == 0) return false;
  handlers_.erase(id);
  ++tombstones_;
  // Compact once tombstones dominate the queue, so cancel-heavy phases
  // (e.g. every flow completion cancelling the manager's wake event) keep
  // the stored size proportional to the live size. The +64 slack keeps
  // small queues from compacting on every other cancellation.
  if (tombstones_ > handlers_.size() + 64) {
    queue_.remove_if_not(
        [this](EventId eid) { return handlers_.count(eid) != 0; });
    tombstones_ = 0;
  }
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) observer_->on_cancelled(id));
  if (events_cancelled_ != nullptr) {
    events_cancelled_->add(1.0);
    queue_depth_->set(static_cast<double>(pending_count()));
  }
  if (timeline_ != nullptr) {
    timeline_->counter_sample(queue_track_, now_,
                              static_cast<double>(pending_count()));
  }
  return true;
}

bool Engine::pop_live(EventRecord& out) {
  while (queue_.pop_min(out)) {
    if (handlers_.count(out.id) != 0) return true;
    if (tombstones_ > 0) --tombstones_;  // lazily discarded cancellation
  }
  return false;
}

void Engine::execute(const EventRecord& r) {
  now_ = r.time;
  // Move the handler out before invoking: the callback may schedule or
  // cancel other events, mutating handlers_.
  auto it = handlers_.find(r.id);
  EventHandler fn = std::move(it->second);
  handlers_.erase(it);
  ++executed_;
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) observer_->on_executed(r.id, r.time));
  if (events_executed_ != nullptr) {
    events_executed_->add(1.0);
    queue_depth_->set(static_cast<double>(pending_count()));
  }
  if (timeline_ != nullptr) {
    timeline_->counter_sample(queue_track_, now_,
                              static_cast<double>(pending_count()));
  }
  {
    const trace::ScopedTimer timer(dispatch_profile_);
    fn();
  }
}

bool Engine::step() {
  EventRecord r{};
  if (!pop_live(r)) return false;
  execute(r);
  return true;
}

Time Engine::run() {
  while (step()) {
  }
  return now_;
}

bool Engine::run_until(Time t) {
  EventRecord r{};
  while (pop_live(r)) {
    if (r.time > t) {
      queue_.push(r);  // keeps its original seq: ordering is unchanged
      now_ = t;
      return true;
    }
    execute(r);
  }
  now_ = std::max(now_, t);
  return false;
}

}  // namespace bbsim::sim
