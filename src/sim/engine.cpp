#include "sim/engine.hpp"

#include <cmath>

#include "stats/metrics.hpp"
#include "trace/profiler.hpp"
#include "trace/timeline.hpp"

namespace bbsim::sim {

void Engine::set_metrics(stats::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    events_scheduled_ = nullptr;
    events_executed_ = nullptr;
    events_cancelled_ = nullptr;
    queue_depth_ = nullptr;
    return;
  }
  events_scheduled_ = &metrics->counter("sim.events_scheduled");
  events_executed_ = &metrics->counter("sim.events_executed");
  events_cancelled_ = &metrics->counter("sim.events_cancelled");
  queue_depth_ = &metrics->gauge("sim.queue_depth");
}

void Engine::set_timeline(trace::TimelineRecorder* timeline) {
  timeline_ = timeline;
  if (timeline_ != nullptr) {
    queue_track_ = timeline_->counter_track("sim.queue_depth", "events");
  }
}

void Engine::set_profiler(trace::Profiler* profiler) {
  dispatch_profile_ = profiler != nullptr ? profiler->section("sim.dispatch") : nullptr;
}

EventId Engine::schedule_at(Time t, EventHandler fn) {
  if (!(t >= now_)) {  // also rejects NaN
    throw util::InvariantError("schedule_at: time " + std::to_string(t) +
                               " is in the past (now=" + std::to_string(now_) + ")");
  }
  if (!std::isfinite(t)) {
    throw util::InvariantError("schedule_at: non-finite time");
  }
  const EventId id = next_id_++;
  queue_.push(Record{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) observer_->on_scheduled(id, now_, t));
  if (events_scheduled_ != nullptr) {
    events_scheduled_->add(1.0);
    queue_depth_->set(static_cast<double>(pending_count()));
  }
  if (timeline_ != nullptr) {
    timeline_->counter_sample(queue_track_, now_,
                              static_cast<double>(pending_count()));
  }
  return id;
}

bool Engine::cancel(EventId id) {
  if (handlers_.count(id) == 0) return false;
  cancelled_.insert(id);
  handlers_.erase(id);
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) observer_->on_cancelled(id));
  if (events_cancelled_ != nullptr) events_cancelled_->add(1.0);
  if (timeline_ != nullptr) {
    timeline_->counter_sample(queue_track_, now_,
                              static_cast<double>(pending_count()));
  }
  return true;
}

bool Engine::pop_next(Record& out) {
  while (!queue_.empty()) {
    Record r = queue_.top();
    if (cancelled_.count(r.id) > 0) {
      queue_.pop();
      cancelled_.erase(r.id);
      continue;
    }
    out = r;
    return true;
  }
  return false;
}

bool Engine::step() {
  Record r{};
  if (!pop_next(r)) return false;
  queue_.pop();
  now_ = r.time;
  // Move the handler out before invoking: the callback may schedule or
  // cancel other events, mutating handlers_.
  auto it = handlers_.find(r.id);
  EventHandler fn = std::move(it->second);
  handlers_.erase(it);
  ++executed_;
  BBSIM_AUDIT_HOOK(if (observer_ != nullptr) observer_->on_executed(r.id, r.time));
  if (events_executed_ != nullptr) events_executed_->add(1.0);
  if (timeline_ != nullptr) {
    timeline_->counter_sample(queue_track_, now_,
                              static_cast<double>(pending_count()));
  }
  {
    const trace::ScopedTimer timer(dispatch_profile_);
    fn();
  }
  return true;
}

Time Engine::run() {
  while (step()) {
  }
  return now_;
}

bool Engine::run_until(Time t) {
  Record r{};
  while (pop_next(r)) {
    if (r.time > t) {
      now_ = t;
      return true;
    }
    step();
  }
  now_ = std::max(now_, t);
  return false;
}

}  // namespace bbsim::sim
