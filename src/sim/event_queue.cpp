#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

namespace bbsim::sim {

namespace {
bool record_less(const EventRecord& a, const EventRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}
}  // namespace

void CalendarQueue::push(const EventRecord& r) {
  ++count_;
  std::uint64_t day = 0;
  if (!virtual_day(r.time, day)) {
    far_.push(r);
    return;
  }
  if (day < cur_virtual_) cur_virtual_ = day;  // earlier than the cursor
  buckets_[static_cast<std::size_t>(day) & (buckets_.size() - 1)].push_back(r);
  if (count_ > buckets_.size() * 2) rebuild(buckets_.size() * 2);
}

bool CalendarQueue::pop_min(EventRecord& out) {
  if (count_ == 0) return false;
  if (count_ == far_.size()) {  // calendar empty, overflow heap only
    out = far_.top();
    far_.pop();
    --count_;
    return true;
  }
  if (buckets_.size() > kMinBuckets && count_ < buckets_.size() / 8) {
    rebuild(buckets_.size() / 2);
    // The rebuild re-derives width_ from the survivors' span; tightly
    // clustered records at a large timestamp can overflow virtual_day for
    // every one of them, leaving the calendar empty and far_ holding all.
    if (count_ == far_.size()) {
      out = far_.top();
      far_.pop();
      --count_;
      return true;
    }
  }
  // Walk days from the cursor. Every calendar record's virtual day is
  // >= cur_virtual_ (pushes of earlier events pull the cursor back), so the
  // first day with a resident holds the global minimum; far_ records are
  // strictly later than all calendar residents by construction.
  const std::size_t n = buckets_.size();
  for (std::size_t lap = 0; lap < n; ++lap) {
    const std::uint64_t day = cur_virtual_ + lap;
    std::vector<EventRecord>& b = buckets_[static_cast<std::size_t>(day) & (n - 1)];
    std::size_t best = b.size();
    for (std::size_t i = 0; i < b.size(); ++i) {
      std::uint64_t d = 0;
      if (!virtual_day(b[i].time, d) || d != day) continue;  // a later year
      if (best == b.size() || record_less(b[i], b[best])) best = i;
    }
    if (best != b.size()) {
      cur_virtual_ = day;
      out = b[best];
      b[best] = b.back();
      b.pop_back();
      --count_;
      return true;
    }
  }
  // A whole lap without a hit: the pending set is sparse relative to one
  // calendar year. Find the minimum directly and reposition the cursor on
  // it -- the correctness backstop that makes width tuning advisory.
  std::size_t bi = n;
  std::size_t ei = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < buckets_[i].size(); ++j) {
      if (bi == n || record_less(buckets_[i][j], buckets_[bi][ei])) {
        bi = i;
        ei = j;
      }
    }
  }
  if (bi == n) {  // no calendar resident at all: everything lives in far_
    out = far_.top();
    far_.pop();
    --count_;
    return true;
  }
  out = buckets_[bi][ei];
  std::uint64_t day = 0;
  if (virtual_day(out.time, day)) cur_virtual_ = day;
  buckets_[bi][ei] = buckets_[bi].back();
  buckets_[bi].pop_back();
  --count_;
  return true;
}

void CalendarQueue::rebuild(std::size_t nbuckets) {
  std::vector<EventRecord> all;
  all.reserve(count_);
  for (std::vector<EventRecord>& b : buckets_) {
    all.insert(all.end(), b.begin(), b.end());
    b.clear();
  }
  while (!far_.empty()) {  // width changes may re-qualify overflow records
    all.push_back(far_.top());
    far_.pop();
  }
  buckets_.assign(nbuckets, {});

  // Width = mean inter-event gap, estimated as span / population. A skewed
  // estimate (duplicate timestamps, one far-future outlier) degrades pop to
  // the direct-search fallback but never mis-orders.
  if (!all.empty()) {
    double lo = all.front().time;
    double hi = lo;
    for (const EventRecord& r : all) {
      lo = std::min(lo, r.time);
      hi = std::max(hi, r.time);
    }
    const double span = hi - lo;
    if (span > 0.0) {
      const double w = span / static_cast<double>(all.size());
      if (std::isfinite(w) && w > 1e-12) width_ = w;
    }
  }

  cur_virtual_ = static_cast<std::uint64_t>(-1);
  for (const EventRecord& r : all) {
    std::uint64_t day = 0;
    if (!virtual_day(r.time, day)) {
      far_.push(r);
      continue;
    }
    if (day < cur_virtual_) cur_virtual_ = day;
    buckets_[static_cast<std::size_t>(day) & (nbuckets - 1)].push_back(r);
  }
  if (cur_virtual_ == static_cast<std::uint64_t>(-1)) cur_virtual_ = 0;
  count_ = all.size();
}

}  // namespace bbsim::sim
