// bbsim -- discrete-event simulation kernel.
//
// A minimal, deterministic event engine in the style of SimGrid's kernel:
// a virtual clock and a calendar queue (event_queue.hpp) of timestamped
// events. Everything above (flows, storage services, the workflow engine)
// is driven by callbacks scheduled here.
//
// Determinism: ties in time are broken by insertion order (a monotonically
// increasing sequence number), so two runs of the same program produce the
// same event interleaving.
//
// Cancellation is lazy: cancel() drops the handler immediately (so
// pending_count() is always the live count) and leaves a tombstone record
// in the queue, discarded when popped; when tombstones outnumber live
// events the queue is compacted in one O(stored) pass.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/error.hpp"

namespace bbsim::stats {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace bbsim::stats

namespace bbsim::trace {
class TimelineRecorder;
struct ProfileSection;
class Profiler;
}  // namespace bbsim::trace

namespace bbsim::sim {

/// Callback invoked when an event fires. It runs at `Engine::now()` equal to
/// the event's timestamp and may schedule further events.
using EventHandler = std::function<void()>;

/// Observer of the engine's event lifecycle, for invariant auditing
/// (src/audit installs one when auditing is on). Callbacks fire inline on
/// the simulation path; implementations must not mutate the engine. The
/// call sites compile out entirely when BBSIM_AUDIT=OFF.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  /// `when` is the event's absolute timestamp; `now` the clock at scheduling.
  virtual void on_scheduled(EventId id, Time now, Time when) = 0;
  /// Fired immediately before the handler runs, with the clock at `when`.
  virtual void on_executed(EventId id, Time when) = 0;
  /// Fired when a pending event is successfully cancelled.
  virtual void on_cancelled(EventId id) = 0;
};

/// The simulation engine: virtual clock + event queue.
///
/// Usage:
///   Engine e;
///   e.schedule_in(5.0, []{ ... });
///   e.run();
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (seconds). Starts at 0.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be finite and >= now()).
  /// NaN and infinite times are rejected with an error naming the value.
  EventId schedule_at(Time t, EventHandler fn);

  /// Schedule `fn` after a delay of `dt` seconds (must be >= 0).
  EventId schedule_in(Time dt, EventHandler fn) { return schedule_at(now_ + dt, fn); }

  /// Cancel a pending event. Cancelling an already-fired or already-cancelled
  /// event is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// Run until the event queue is empty. Returns the final clock value.
  Time run();

  /// Process all events with timestamp <= `t`, then set the clock to `t`.
  /// Returns true if the queue still holds future events.
  bool run_until(Time t);

  /// Execute exactly one event (the earliest); returns false if none pending.
  bool step();

  /// Number of events executed so far.
  std::size_t executed_count() const { return executed_; }

  /// Number of events currently pending. This is the *live* count --
  /// cancelled events never appear, regardless of whether their queue
  /// tombstones have been discarded yet.
  std::size_t pending_count() const { return handlers_.size(); }

  /// Publish engine metrics (events scheduled / executed / cancelled and the
  /// pending-queue high-water mark) into `metrics`; nullptr disables
  /// publishing (the default -- the hot path then pays only a null check).
  void set_metrics(stats::MetricsRegistry* metrics);

  /// Install a lifecycle observer (nullptr disables; the default). The
  /// observer must outlive the engine or be cleared before destruction.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Publish an event-queue-depth counter track into `timeline`; nullptr
  /// disables (the default). Same opt-in contract as set_metrics.
  void set_timeline(trace::TimelineRecorder* timeline);

  /// Aggregate wall-clock event-dispatch cost ("sim.dispatch") into
  /// `profiler`; nullptr disables (the default).
  void set_profiler(trace::Profiler* profiler);

 private:
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t executed_ = 0;
  CalendarQueue queue_;
  std::unordered_map<EventId, EventHandler> handlers_;
  /// Cancelled records still sitting in queue_; compacted when they
  /// outnumber the live events (plus slack, so small queues never compact).
  std::size_t tombstones_ = 0;

  EngineObserver* observer_ = nullptr;

  // Optional metrics sinks (cached Counter/Gauge pointers: no map lookup on
  // the hot path).
  stats::Counter* events_scheduled_ = nullptr;
  stats::Counter* events_executed_ = nullptr;
  stats::Counter* events_cancelled_ = nullptr;
  stats::Gauge* queue_depth_ = nullptr;

  // Optional timeline sink (cached track id) and wall-clock profiler.
  trace::TimelineRecorder* timeline_ = nullptr;
  std::size_t queue_track_ = 0;
  trace::ProfileSection* dispatch_profile_ = nullptr;

  /// Pops the next live record (discarding tombstones) or returns false.
  bool pop_live(EventRecord& out);
  /// Advances the clock to `r.time` and runs its handler.
  void execute(const EventRecord& r);
};

}  // namespace bbsim::sim
