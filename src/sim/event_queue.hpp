// bbsim -- calendar-queue event scheduling (Brown, CACM 31(10), 1988).
//
// The engine's pending-event set is a calendar queue: event timestamps hash
// into a power-of-two ring of "day" buckets of width `width_`, and a cursor
// walks the current day. When the bucket width tracks the mean inter-event
// gap, enqueue and dequeue are O(1) amortized -- the binary heap's O(log n)
// compare chain (and its pointer-chasing cache misses) disappear, which is
// what the event churn of a 100k-1M-task run needs.
//
// Mis-tuned widths cost only speed, never correctness: a full lap of the
// calendar without a hit falls back to a direct minimum search that
// repositions the cursor exactly. Timestamps too large for the day index
// to be exact in a double (time / width >= 2^53) overflow into a plain
// binary heap; under the current width those are strictly later than every
// calendar resident, so ordering is preserved.
//
// Determinism: dequeue order is strictly (time, seq) lexicographic -- the
// same FIFO-among-equal-timestamps contract as the heap it replaces.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace bbsim::sim {

/// Simulated time in seconds.
using Time = double;

/// Handle for a scheduled event, usable with Engine::cancel().
using EventId = std::uint64_t;

/// One pending event: absolute timestamp, FIFO tie-break, handler key.
struct EventRecord {
  Time time = 0.0;
  std::uint64_t seq = 0;  ///< tie-break: FIFO among equal timestamps
  EventId id = 0;
  // `greater` ordering for the min-heap overflow path.
  friend bool operator>(const EventRecord& a, const EventRecord& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Min-queue of EventRecords ordered by (time, seq). Not a priority_queue
/// drop-in: pop_min() removes *and* returns, and remove_if_not() supports
/// the engine's tombstone compaction.
class CalendarQueue {
 public:
  CalendarQueue() : buckets_(kMinBuckets) {}

  /// Insert a record. Timestamps must be finite and non-negative (the
  /// engine validates before calling).
  void push(const EventRecord& r);

  /// Remove the smallest (time, seq) record into `out`; false when empty.
  bool pop_min(EventRecord& out);

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Erase every record whose id fails `keep(id)` -- tombstone compaction
  /// after bursts of cancellations. O(stored records).
  template <typename Keep>
  void remove_if_not(Keep&& keep) {
    std::size_t kept = 0;
    for (std::vector<EventRecord>& b : buckets_) {
      std::size_t w = 0;
      for (const EventRecord& r : b) {
        if (keep(r.id)) b[w++] = r;
      }
      b.resize(w);
      kept += w;
    }
    if (!far_.empty()) {
      std::vector<EventRecord> live;
      live.reserve(far_.size());
      while (!far_.empty()) {
        if (keep(far_.top().id)) live.push_back(far_.top());
        far_.pop();
      }
      for (const EventRecord& r : live) far_.push(r);
      kept += live.size();
    }
    count_ = kept;
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  /// 2^53: largest double magnitude where every integer is exact.
  static constexpr double kMaxExactDay = 9007199254740992.0;

  std::vector<std::vector<EventRecord>> buckets_;  ///< size is a power of two
  /// Overflow min-heap for timestamps whose day index is not exact.
  std::priority_queue<EventRecord, std::vector<EventRecord>,
                      std::greater<EventRecord>>
      far_;
  double width_ = 1.0;            ///< bucket span in simulated seconds
  std::uint64_t cur_virtual_ = 0; ///< day the cursor is in (not wrapped)
  std::size_t count_ = 0;         ///< total stored, buckets + far_

  /// Virtual (un-wrapped) day index of `t`; false when not exactly
  /// representable, routing the record to the overflow heap.
  bool virtual_day(Time t, std::uint64_t& out) const {
    const double day = t / width_;
    if (!(day < kMaxExactDay)) return false;
    out = static_cast<std::uint64_t>(day);
    return true;
  }

  /// Redistribute everything over `nbuckets` buckets, re-deriving the
  /// width from the stored records' time span.
  void rebuild(std::size_t nbuckets);
};

}  // namespace bbsim::sim
