// bbsim -- ASCII line plots for experiment series (terminal-friendly
// companions to the CSV outputs; one glyph per series).
#pragma once

#include <string>
#include <vector>

#include "analysis/stats.hpp"

namespace bbsim::analysis {

struct PlotOptions {
  int width = 64;   ///< plot area columns
  int height = 16;  ///< plot area rows
  bool y_from_zero = true;
  std::string x_label;
  std::string y_label;
};

/// Renders the series into a character grid with axes and a legend.
/// Series points are scattered at their (x, y); glyphs cycle * + o x # @.
std::string ascii_plot(const std::vector<Series>& series,
                       const PlotOptions& options = {});

}  // namespace bbsim::analysis
