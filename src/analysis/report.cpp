#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::analysis {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw util::InvariantError("table with no columns");
}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_numeric_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (const double v : row) cells.push_back(util::format("%.*f", precision, v));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += cell;
      out.append(width[c] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::Error("cannot open CSV for writing: '" + path + "'");
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string q = "\"";
    for (const char ch : cell) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) out << ',';
      out << quote(c < row.size() ? row[c] : std::string{});
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

Table series_table(const std::string& x_label, const std::vector<Series>& series,
                   int precision) {
  std::vector<std::string> header{x_label};
  for (const Series& s : series) header.push_back(s.label);

  // Collect the union of x values, preserving numeric order.
  std::map<double, std::vector<std::string>> rows;
  for (std::size_t si = 0; si < series.size(); ++si) {
    const Series& s = series[si];
    for (std::size_t i = 0; i < s.size(); ++i) {
      auto& row = rows[s.x[i]];
      row.resize(series.size());
      std::string cell = util::format("%.*f", precision, s.y[i]);
      if (i < s.yerr.size() && s.yerr[i] > 0.0) {
        cell += util::format(" ±%.*f", precision, s.yerr[i]);
      }
      row[si] = std::move(cell);
    }
  }
  Table t(std::move(header));
  for (const auto& [x, cells] : rows) {
    std::vector<std::string> row{util::format("%g", x)};
    row.insert(row.end(), cells.begin(), cells.end());
    t.add_row(std::move(row));
  }
  return t;
}

std::string percent(double fraction, int precision) {
  return util::format("%.*f%%", precision, fraction * 100.0);
}

}  // namespace bbsim::analysis
