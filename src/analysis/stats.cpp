#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bbsim::analysis {

using util::InvariantError;

Stats describe(const std::vector<double>& sample) {
  if (sample.empty()) throw InvariantError("describe: empty sample");
  Stats s;
  s.count = sample.size();
  double sum = 0.0;
  s.min = sample[0];
  s.max = sample[0];
  for (const double v : sample) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (const double v : sample) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  s.median = percentile(sample, 50.0);
  s.p25 = percentile(sample, 25.0);
  s.p75 = percentile(sample, 75.0);
  return s;
}

double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) throw InvariantError("percentile: empty sample");
  if (q < 0.0 || q > 100.0) throw InvariantError("percentile: q out of [0,100]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  const double pos = q / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double relative_error(double predicted, double reference) {
  if (reference == 0.0) throw InvariantError("relative_error: zero reference");
  return std::fabs(predicted - reference) / std::fabs(reference);
}

double mean_absolute_percentage_error(const std::vector<double>& predicted,
                                      const std::vector<double>& reference) {
  if (predicted.size() != reference.size() || predicted.empty()) {
    throw InvariantError("MAPE: series must be equal-length and non-empty");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    total += relative_error(predicted[i], reference[i]);
  }
  return total / static_cast<double>(predicted.size());
}

void Series::add(double x_value, double y_value, double err) {
  x.push_back(x_value);
  y.push_back(y_value);
  yerr.push_back(err);
}

}  // namespace bbsim::analysis
