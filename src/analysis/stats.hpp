// bbsim -- descriptive statistics and error metrics for experiment series.
#pragma once

#include <string>
#include <vector>

namespace bbsim::analysis {

/// Summary statistics of a sample.
struct Stats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;

  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Computes Stats over a sample; throws InvariantError on empty input.
Stats describe(const std::vector<double>& sample);

/// Linear-interpolation percentile (q in [0, 100]).
double percentile(std::vector<double> sample, double q);

/// Relative error |predicted - reference| / reference (reference != 0).
double relative_error(double predicted, double reference);

/// Mean absolute percentage error between two equal-length series.
double mean_absolute_percentage_error(const std::vector<double>& predicted,
                                      const std::vector<double>& reference);

/// One (x, y +/- err) series of an experiment, e.g. makespan vs. % staged.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> yerr;  ///< optional (empty or same length as y)

  void add(double x_value, double y_value, double err = 0.0);
  std::size_t size() const { return x.size(); }
};

}  // namespace bbsim::analysis
