// bbsim -- experiment reporting: aligned console tables and CSV files.
//
// Every bench binary prints the paper's rows/series as an aligned table and
// mirrors them to a CSV next to the binary, so figures can be re-plotted.
#pragma once

#include <string>
#include <vector>

#include "analysis/stats.hpp"

namespace bbsim::analysis {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with `precision` decimals.
  void add_numeric_row(const std::vector<double>& row, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment and a rule under the header.
  std::string to_string() const;
  /// Print to stdout.
  void print() const;
  /// Write as CSV (header + rows, comma-separated, quoted when needed).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Merge several series on their x values into one table:
/// x column + one column per series (empty cell when a series lacks an x).
Table series_table(const std::string& x_label, const std::vector<Series>& series,
                   int precision = 2);

/// Format helper: "12.3%" style.
std::string percent(double fraction, int precision = 1);

}  // namespace bbsim::analysis
