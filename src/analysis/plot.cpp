#include "analysis/plot.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::analysis {

std::string ascii_plot(const std::vector<Series>& series, const PlotOptions& options) {
  if (series.empty()) throw util::InvariantError("ascii_plot: no series");
  const int W = std::max(8, options.width);
  const int H = std::max(4, options.height);

  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  bool any = false;
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  if (!any) throw util::InvariantError("ascii_plot: series have no points");
  if (options.y_from_zero) ymin = std::min(ymin, 0.0);
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  static const char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};
  std::vector<std::string> grid(static_cast<std::size_t>(H), std::string(W, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const Series& s = series[si];
    for (std::size_t i = 0; i < s.size(); ++i) {
      const int col = static_cast<int>(std::lround((s.x[i] - xmin) / (xmax - xmin) *
                                                   (W - 1)));
      const int row = static_cast<int>(std::lround((s.y[i] - ymin) / (ymax - ymin) *
                                                   (H - 1)));
      grid[static_cast<std::size_t>(H - 1 - row)][col] = glyph;
    }
  }

  std::string out;
  if (!options.y_label.empty()) out += options.y_label + "\n";
  const std::string top_label = util::format("%g", ymax);
  const std::string bottom_label = util::format("%g", ymin);
  const std::size_t margin = std::max(top_label.size(), bottom_label.size());
  for (int r = 0; r < H; ++r) {
    std::string prefix(margin, ' ');
    if (r == 0) prefix = top_label + std::string(margin - top_label.size(), ' ');
    if (r == H - 1) {
      prefix = bottom_label + std::string(margin - bottom_label.size(), ' ');
    }
    out += prefix + " |" + grid[static_cast<std::size_t>(r)] + "\n";
  }
  out += std::string(margin + 1, ' ') + '+' + std::string(W, '-') + '\n';
  out += std::string(margin + 2, ' ') + util::format("%g", xmin);
  const std::string xmax_s = util::format("%g", xmax);
  const int pad = W - static_cast<int>(util::format("%g", xmin).size()) -
                  static_cast<int>(xmax_s.size());
  out += std::string(static_cast<std::size_t>(std::max(1, pad)), ' ') + xmax_s;
  if (!options.x_label.empty()) out += "  " + options.x_label;
  out += '\n';
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += util::format("  %c %s\n", kGlyphs[si % sizeof(kGlyphs)],
                        series[si].label.c_str());
  }
  return out;
}

}  // namespace bbsim::analysis
