// bbsim -- unit helpers.
//
// The simulator works in SI base units throughout:
//   time       : seconds          (double)
//   data       : bytes            (double -- file sizes fit exactly up to 2^53)
//   bandwidth  : bytes / second   (double)
//   compute    : flop             (double), rates in flop / second
//
// This header provides named constants and parsing/formatting helpers so
// that call sites can say `32 * MiB` or `parse_bandwidth("6.5 GB/s")`
// instead of sprinkling magic powers of ten.
#pragma once

#include <cstdint>
#include <string>

namespace bbsim::util {

// ---------------------------------------------------------------- data units
inline constexpr double KB = 1e3;   ///< kilobyte (SI)
inline constexpr double MB = 1e6;   ///< megabyte (SI)
inline constexpr double GB = 1e9;   ///< gigabyte (SI)
inline constexpr double TB = 1e12;  ///< terabyte (SI)

inline constexpr double KiB = 1024.0;        ///< kibibyte (IEC)
inline constexpr double MiB = 1024.0 * KiB;  ///< mebibyte (IEC)
inline constexpr double GiB = 1024.0 * MiB;  ///< gibibyte (IEC)
inline constexpr double TiB = 1024.0 * GiB;  ///< tebibyte (IEC)

// ------------------------------------------------------------- compute units
inline constexpr double KFLOP = 1e3;
inline constexpr double MFLOP = 1e6;
inline constexpr double GFLOP = 1e9;
inline constexpr double TFLOP = 1e12;

// ---------------------------------------------------------------- time units
inline constexpr double USEC = 1e-6;
inline constexpr double MSEC = 1e-3;
inline constexpr double SEC = 1.0;
inline constexpr double MINUTE = 60.0;
inline constexpr double HOUR = 3600.0;

/// Parse a data size with an optional SI/IEC suffix: "512", "32MiB", "1.5 GB".
/// Throws ParseError on malformed input.
double parse_size(const std::string& text);

/// Parse a bandwidth such as "800MB/s", "6.5 GB/s", "950MBps".
/// Throws ParseError on malformed input.
double parse_bandwidth(const std::string& text);

/// Format a byte count with a human-friendly SI suffix ("1.50 GB").
std::string format_size(double bytes);

/// Format a bandwidth ("6.50 GB/s").
std::string format_bandwidth(double bytes_per_sec);

/// Format a duration in seconds with adaptive precision ("12.34 s", "3.2 ms").
std::string format_time(double seconds);

}  // namespace bbsim::util
