#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/error.hpp"

namespace bbsim::util {

namespace {

/// Splits "1.5 GB/s" into the numeric prefix and the (trimmed) suffix.
struct NumberWithSuffix {
  double value = 0.0;
  std::string suffix;
};

NumberWithSuffix split_number(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  const std::size_t start = i;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
  bool saw_digit = false;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.' ||
          text[i] == 'e' || text[i] == 'E' ||
          ((text[i] == '+' || text[i] == '-') && i > start &&
           (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
    if (std::isdigit(static_cast<unsigned char>(text[i]))) saw_digit = true;
    ++i;
  }
  if (!saw_digit) throw ParseError("no number in '" + text + "'");
  NumberWithSuffix out;
  out.value = std::stod(text.substr(start, i - start));
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  std::size_t end = text.size();
  while (end > i && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  out.suffix = text.substr(i, end - i);
  return out;
}

double size_multiplier(const std::string& suffix) {
  static const std::map<std::string, double> kTable = {
      {"", 1.0},      {"B", 1.0},     {"b", 1.0},     {"kB", KB},   {"KB", KB},
      {"MB", MB},     {"GB", GB},     {"TB", TB},     {"KiB", KiB}, {"MiB", MiB},
      {"GiB", GiB},   {"TiB", TiB},   {"k", KB},      {"K", KB},    {"M", MB},
      {"G", GB},      {"T", TB}};
  const auto it = kTable.find(suffix);
  if (it == kTable.end()) throw ParseError("unknown size suffix '" + suffix + "'");
  return it->second;
}

}  // namespace

double parse_size(const std::string& text) {
  const auto [value, suffix] = split_number(text);
  const double bytes = value * size_multiplier(suffix);
  if (bytes < 0) throw ParseError("negative size '" + text + "'");
  return bytes;
}

double parse_bandwidth(const std::string& text) {
  auto [value, suffix] = split_number(text);
  // Strip a trailing "/s", "ps" or "Bps"-style rate marker.
  if (suffix.size() >= 2 && suffix.substr(suffix.size() - 2) == "/s") {
    suffix = suffix.substr(0, suffix.size() - 2);
  } else if (suffix.size() >= 2 && suffix.substr(suffix.size() - 2) == "ps") {
    suffix = suffix.substr(0, suffix.size() - 2);
  }
  const double rate = value * size_multiplier(suffix);
  if (rate < 0) throw ParseError("negative bandwidth '" + text + "'");
  return rate;
}

namespace {
std::string format_scaled(double value, const char* unit) {
  static const struct {
    double factor;
    const char* prefix;
  } kScales[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""}};
  for (const auto& s : kScales) {
    if (std::fabs(value) >= s.factor || s.factor == 1.0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f %s%s", value / s.factor, s.prefix, unit);
      return buf;
    }
  }
  return "0 " + std::string(unit);
}
}  // namespace

std::string format_size(double bytes) { return format_scaled(bytes, "B"); }

std::string format_bandwidth(double bytes_per_sec) {
  return format_scaled(bytes_per_sec, "B/s");
}

std::string format_time(double seconds) {
  char buf[64];
  if (seconds == 0.0) return "0 s";
  const double a = std::fabs(seconds);
  if (a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (a < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (a < 600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f min", seconds / 60.0);
  }
  return buf;
}

}  // namespace bbsim::util
