#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace bbsim::util {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::uint64_t salt) const {
  return Rng(mix64(seed_ ^ mix64(salt)));
}

Rng Rng::fork(const std::string& label) const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return fork(h);
}

double Rng::uniform(double lo, double hi) {
  if (hi < lo) throw InvariantError("uniform: hi < lo");
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw InvariantError("uniform_int: hi < lo");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  if (hi < lo) throw InvariantError("truncated_normal: hi < lo");
  if (stddev <= 0) return std::clamp(mean, lo, hi);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

double Rng::lognormal_mean(double mean, double sigma) {
  if (mean <= 0) throw InvariantError("lognormal_mean: mean must be positive");
  if (sigma <= 0) return mean;
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve for mu.
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw InvariantError("exponential: mean must be positive");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::weibull(double shape, double scale) {
  if (shape <= 0) throw InvariantError("weibull: shape must be positive");
  if (scale <= 0) throw InvariantError("weibull: scale must be positive");
  std::weibull_distribution<double> d(shape, scale);
  return d(engine_);
}

double Rng::weibull_mean(double shape, double mean) {
  if (mean <= 0) throw InvariantError("weibull_mean: mean must be positive");
  if (shape <= 0) throw InvariantError("weibull_mean: shape must be positive");
  return weibull(shape, mean / std::tgamma(1.0 + 1.0 / shape));
}

bool Rng::chance(double probability) {
  if (probability <= 0) return false;
  if (probability >= 1) return true;
  std::bernoulli_distribution d(probability);
  return d(engine_);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw InvariantError("weighted_index: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0) throw InvariantError("weighted_index: non-positive total weight");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t Rng::next_u64() { return engine_(); }

}  // namespace bbsim::util
