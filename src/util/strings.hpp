// bbsim -- small string helpers shared across subsystems.
#pragma once

#include <string>
#include <vector>

namespace bbsim::util {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep);

/// Remove leading/trailing ASCII whitespace.
std::string trim(const std::string& text);

/// Join the parts with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `text` begins with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

/// True if `text` ends with `suffix`.
bool ends_with(const std::string& text, const std::string& suffix);

/// Lower-case an ASCII string.
std::string to_lower(std::string text);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace bbsim::util
