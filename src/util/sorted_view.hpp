/// \file
/// bbsim -- deterministic iteration over unordered associative containers.
///
/// `std::unordered_map` / `std::unordered_set` iteration order is
/// unspecified and varies across standard libraries, hash seeds and
/// insertion histories, so a range-for over one inside any path that feeds
/// serialized output (reports, timelines, metrics JSON) silently breaks the
/// byte-identical-report guarantee the oracle/fuzz differential layer and
/// the FNV-1a bench gates depend on. The `bbsim-unordered-iteration` static
/// check (tools/tidy/) therefore bans direct walks; these helpers are the
/// sanctioned escape: copy the keys (or key/value pairs) out, sort them,
/// iterate the sorted copy.
///
///   for (const auto& [id, index] : util::sorted_items(open_flows)) ...
///   for (const auto& key : util::sorted_keys(expected_size)) ...
///
/// Cost is O(n log n) plus one copy -- fine for finalization and report
/// paths, which is exactly where determinism matters; hot paths should use
/// ordered containers or index vectors instead.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

namespace bbsim::util {

/// The container's keys, sorted ascending. Works for unordered maps and
/// sets alike (for sets the elements are the keys).
template <typename Container>
std::vector<typename Container::key_type> sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& entry : c) {
    if constexpr (std::is_same_v<typename Container::key_type,
                                 typename Container::value_type>) {
      keys.push_back(entry);
    } else {
      keys.push_back(entry.first);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// The map's (key, mapped) pairs as plain copies, sorted by key ascending.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items;
  items.reserve(m.size());
  for (const auto& entry : m) items.emplace_back(entry.first, entry.second);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

}  // namespace bbsim::util
