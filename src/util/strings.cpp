#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace bbsim::util {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string to_lower(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace bbsim::util
