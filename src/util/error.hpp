/// \file
/// bbsim -- error types shared by all subsystems, plus the project-wide
/// assertion macros (`BBSIM_ASSERT` / `BBSIM_AUDIT_CHECK`): every invariant
/// check in the library either throws through BBSIM_ASSERT (hard failure,
/// file:line in the message) or records through BBSIM_AUDIT_CHECK into an
/// audit sink (soft failure, collected by src/audit without aborting the
/// run).
#pragma once

#include <stdexcept>
#include <string>

namespace bbsim::util {

/// Base class for all bbsim errors. Every subsystem throws a subclass of
/// this so callers can catch the whole library with one handler.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed user input: bad JSON, bad platform file, bad workflow file.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A lookup by name/id failed (unknown host, file, task, ...).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error("not found: " + what) {}
};

/// An operation violates an invariant of the simulated system
/// (double-completion of a flow, negative file size, cycle in a DAG, ...).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error("invariant violated: " + what) {}
};

/// A configuration is self-inconsistent (e.g. task needs more cores than
/// any host has, burst buffer capacity exceeded with eviction disabled).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("configuration error: " + what) {}
};

}  // namespace bbsim::util

#define BBSIM_STRINGIZE_IMPL(x) #x
#define BBSIM_STRINGIZE(x) BBSIM_STRINGIZE_IMPL(x)

/// Hard invariant: throws util::InvariantError with file:line context when
/// `cond` is false. `msg` is any expression convertible to std::string via
/// concatenation (string literals and std::string both work).
///
///   BBSIM_ASSERT(spec.weight > 0, "flow weight must be > 0");
#define BBSIM_ASSERT(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      throw ::bbsim::util::InvariantError(                                   \
          std::string(__FILE__ ":" BBSIM_STRINGIZE(__LINE__) ": ") + (msg)); \
    }                                                                        \
  } while (false)

/// Soft invariant: when `cond` is false, records a violation into `sink`
/// (anything with a report(code, time, subject, message) member -- in
/// practice audit::Auditor) instead of throwing, so an auditing run can
/// keep going and report every violation at once. The message carries the
/// same file:line context as BBSIM_ASSERT.
///
///   BBSIM_AUDIT_CHECK(auditor, used <= cap, audit::Code::kCapacityExceeded,
///                     now, svc.name(), "occupancy above capacity");
#define BBSIM_AUDIT_CHECK(sink, cond, code, time, subject, msg)              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      (sink).report(                                                         \
          (code), (time), (subject),                                         \
          std::string(__FILE__ ":" BBSIM_STRINGIZE(__LINE__) ": ") + (msg)); \
    }                                                                        \
  } while (false)

/// Wraps an audit-hook call site so builds configured with -DBBSIM_AUDIT=OFF
/// compile the hook out entirely (not even a null-pointer check remains on
/// the hot path). With the default BBSIM_AUDIT=ON, hooks cost one pointer
/// test when no observer is installed.
#if defined(BBSIM_AUDIT_ENABLED)
#define BBSIM_AUDIT_HOOK(stmt) stmt
#else
#define BBSIM_AUDIT_HOOK(stmt) \
  do {                         \
  } while (false)
#endif

/// Same compile-out guard for critical-path recorder call sites:
/// -DBBSIM_CRITPATH=OFF removes every critpath::Recorder::record_* call
/// from the engine; the default ON costs one pointer test per event when
/// no recorder is attached.
#if defined(BBSIM_CRITPATH_ENABLED)
#define BBSIM_CRITPATH_HOOK(stmt) stmt
#else
#define BBSIM_CRITPATH_HOOK(stmt) \
  do {                            \
  } while (false)
#endif
