// bbsim -- error types shared by all subsystems.
#pragma once

#include <stdexcept>
#include <string>

namespace bbsim::util {

/// Base class for all bbsim errors. Every subsystem throws a subclass of
/// this so callers can catch the whole library with one handler.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed user input: bad JSON, bad platform file, bad workflow file.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A lookup by name/id failed (unknown host, file, task, ...).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error("not found: " + what) {}
};

/// An operation violates an invariant of the simulated system
/// (double-completion of a flow, negative file size, cycle in a DAG, ...).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error("invariant violated: " + what) {}
};

/// A configuration is self-inconsistent (e.g. task needs more cores than
/// any host has, burst buffer capacity exceeded with eviction disabled).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("configuration error: " + what) {}
};

}  // namespace bbsim::util
