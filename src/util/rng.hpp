// bbsim -- deterministic random number generation.
//
// All stochastic behaviour in the simulator (testbed interference, workload
// generation) flows through Rng so that every experiment is reproducible
// from a single seed. Sub-streams are derived with `fork()` so adding a new
// consumer does not perturb existing draws.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace bbsim::util {

/// A seeded pseudo-random stream (mt19937_64 based) with the distributions
/// the simulator needs. Copyable and value-semantic; copies diverge.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed), seed_(seed) {}

  /// The seed this stream was created with.
  std::uint64_t seed() const { return seed_; }

  /// Derive an independent sub-stream. Deterministic: fork(i) of equal
  /// parents are equal. Uses splitmix-style mixing of (seed, salt).
  Rng fork(std::uint64_t salt) const;

  /// Derive a sub-stream from a string label (e.g. a host or task name).
  Rng fork(const std::string& label) const;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Normal draw truncated to [lo, hi] (by resampling, falls back to clamp).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Log-normal draw parameterised by the *target* mean and the sigma of the
  /// underlying normal. A sigma of 0 returns `mean` exactly. The returned
  /// distribution has expectation `mean` (we subtract sigma^2/2 in mu).
  double lognormal_mean(double mean, double sigma);

  /// Exponential draw with the given mean (= 1/lambda).
  double exponential(double mean);

  /// Weibull draw with the given shape k and scale lambda (inverse-CDF
  /// sampling). k < 1 gives a heavy tail (bursty interarrivals), k = 1 is
  /// exponential, k > 1 concentrates around the scale.
  double weibull(double shape, double scale);

  /// Weibull draw parameterised by the *target* mean instead of the scale
  /// (the scale is mean / Gamma(1 + 1/shape), so E[X] = mean exactly).
  double weibull_mean(double shape, double mean);

  /// Bernoulli draw.
  bool chance(double probability);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Raw 64-bit draw (for hashing / sub-seeding).
  std::uint64_t next_u64();

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// splitmix64 finaliser -- stateless 64-bit mixing used for seed derivation.
std::uint64_t mix64(std::uint64_t x);

}  // namespace bbsim::util
