#include "model/fitting.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bbsim::model {

using util::InvariantError;

namespace {

/// Ordinary least squares for y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double rmse = 0.0;
};

LinearFit least_squares(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12 * std::max(1.0, sxx)) {
    throw InvariantError("least_squares: degenerate input (identical x values)");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss += r * r;
  }
  fit.rmse = std::sqrt(ss / n);
  return fit;
}

}  // namespace

AmdahlFit fit_amdahl(const std::vector<ScalingSample>& samples) {
  if (samples.size() < 2) throw InvariantError("fit_amdahl: need >= 2 samples");
  std::vector<double> x, y;
  for (const ScalingSample& s : samples) {
    if (s.cores < 1) throw InvariantError("fit_amdahl: cores must be >= 1");
    if (s.time <= 0) throw InvariantError("fit_amdahl: time must be > 0");
    x.push_back(1.0 / s.cores);
    y.push_back(s.time);
  }
  // T(p) = a + b * (1/p); a = alpha*T1 >= 0, b = (1-alpha)*T1 >= 0.
  LinearFit lin = least_squares(x, y);
  double a = std::max(0.0, lin.intercept);
  double b = std::max(0.0, lin.slope);
  if (a + b <= 0) throw InvariantError("fit_amdahl: degenerate fit (T1 <= 0)");
  AmdahlFit fit;
  fit.t1 = a + b;
  fit.alpha = std::clamp(a / (a + b), 0.0, 1.0);
  fit.rmse = lin.rmse;
  return fit;
}

BandwidthFit fit_bandwidth(const std::vector<TransferSample>& samples) {
  if (samples.size() < 2) throw InvariantError("fit_bandwidth: need >= 2 samples");
  std::vector<double> x, y;
  for (const TransferSample& s : samples) {
    if (s.bytes <= 0) throw InvariantError("fit_bandwidth: bytes must be > 0");
    if (s.seconds <= 0) throw InvariantError("fit_bandwidth: seconds must be > 0");
    x.push_back(s.bytes);
    y.push_back(s.seconds);
  }
  const LinearFit lin = least_squares(x, y);
  if (lin.slope <= 0) {
    throw InvariantError("fit_bandwidth: non-positive slope (times do not grow "
                         "with size; measurements are latency-dominated)");
  }
  BandwidthFit fit;
  fit.latency = std::max(0.0, lin.intercept);
  fit.bandwidth = 1.0 / lin.slope;
  fit.rmse = lin.rmse;
  return fit;
}

}  // namespace bbsim::model
