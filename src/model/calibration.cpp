#include "model/calibration.hpp"

#include "util/error.hpp"

namespace bbsim::model {

using util::InvariantError;

double amdahl_time(double t_seq, int cores, double alpha) {
  if (cores < 1) throw InvariantError("amdahl_time: cores must be >= 1");
  if (alpha < 0 || alpha > 1) throw InvariantError("amdahl_time: alpha must be in [0,1]");
  if (t_seq < 0) throw InvariantError("amdahl_time: negative time");
  return alpha * t_seq + (1.0 - alpha) * t_seq / cores;
}

double amdahl_speedup(int cores, double alpha) {
  return 1.0 / (alpha + (1.0 - alpha) / cores);
}

double compute_time_from_observed(double observed_time, double lambda_io) {
  if (lambda_io < 0 || lambda_io > 1) {
    throw InvariantError("lambda_io must be in [0,1]");
  }
  if (observed_time < 0) throw InvariantError("negative observed time");
  return (1.0 - lambda_io) * observed_time;
}

double sequential_compute_time(double observed_time, double lambda_io, int cores,
                               double alpha) {
  if (cores < 1) throw InvariantError("cores must be >= 1");
  if (alpha < 0 || alpha > 1) throw InvariantError("alpha must be in [0,1]");
  return compute_time_from_observed(observed_time, lambda_io) /
         (alpha + (1.0 - alpha) / cores);
}

double sequential_compute_time_perfect(double observed_time, double lambda_io,
                                       int cores) {
  return sequential_compute_time(observed_time, lambda_io, cores, 0.0);
}

std::size_t calibrate_workflow(wf::Workflow& workflow,
                               const std::map<std::string, TaskObservation>& by_type,
                               double reference_core_speed) {
  if (reference_core_speed <= 0) {
    throw InvariantError("reference core speed must be > 0");
  }
  std::size_t calibrated = 0;
  for (const std::string& name : workflow.task_names()) {
    wf::Task& t = workflow.task_mut(name);
    const auto it = by_type.find(t.type);
    if (it == by_type.end()) continue;
    const TaskObservation& obs = it->second;
    const double t_c1 = sequential_compute_time(obs.observed_time, obs.lambda_io,
                                                obs.observed_cores, obs.alpha);
    t.flops = t_c1 * reference_core_speed;
    t.alpha = obs.alpha;
    ++calibrated;
  }
  return calibrated;
}

}  // namespace bbsim::model
