// bbsim -- calibration fitting: estimate model parameters from measurements.
//
// The paper hand-picks alpha = 0 (Eq. (4)) because fitting Amdahl's alpha
// per task "requires fine-grained knowledge about the execution platform".
// When multi-core timings *are* available (our testbed produces them, and
// so does any real strong-scaling study), these least-squares fits recover
// the general Eq. (3) parameters:
//
//   Amdahl:     T(p) = a + b / p          with a = alpha*T1, b = (1-alpha)*T1
//   bandwidth:  t(S) = L + S / B          per-operation latency L, bandwidth B
//
// Both are linear least squares with closed-form solutions.
#pragma once

#include <vector>

namespace bbsim::model {

/// One strong-scaling observation: time measured on `cores` cores.
struct ScalingSample {
  int cores = 1;
  double time = 0.0;
};

/// Result of the Amdahl fit.
struct AmdahlFit {
  double t1 = 0.0;     ///< estimated sequential time (= a + b)
  double alpha = 0.0;  ///< estimated serial fraction, clamped to [0, 1]
  double rmse = 0.0;   ///< root-mean-square residual of the fit
};

/// Fits T(p) = alpha*T1 + (1-alpha)*T1/p to >= 2 samples with distinct core
/// counts. Throws InvariantError on degenerate input.
AmdahlFit fit_amdahl(const std::vector<ScalingSample>& samples);

/// One transfer observation: `seconds` to move `bytes`.
struct TransferSample {
  double bytes = 0.0;
  double seconds = 0.0;
};

/// Result of the latency/bandwidth fit.
struct BandwidthFit {
  double latency = 0.0;    ///< seconds per operation (intercept, clamped >= 0)
  double bandwidth = 0.0;  ///< bytes/second (1 / slope)
  double rmse = 0.0;
};

/// Fits t = L + S/B to >= 2 samples with distinct sizes.
/// Throws InvariantError on degenerate input (e.g. non-increasing times
/// making the slope non-positive).
BandwidthFit fit_bandwidth(const std::vector<TransferSample>& samples);

}  // namespace bbsim::model
