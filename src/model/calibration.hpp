// bbsim -- the paper's performance model (Section IV-A, Equations (1)-(4)).
//
// The simulator needs each task's *purely computational sequential* time
// T_c(1). Real measurements give the observed multi-core time T(p) and the
// observed fraction of that time spent in I/O, lambda_io. The paper derives:
//
//   (1)  T_c(p) = (1 - lambda_io) * T(p)
//   (2)  T_c(p) = alpha * T_c(1) + (1 - alpha) * T_c(1) / p      (Amdahl)
//   (3)  T_c(1) = (1 - lambda_io) * T(p) / (alpha + (1 - alpha)/p)
//   (4)  T_c(1) = p * (1 - lambda_io) * T(p)                     (alpha = 0)
//
// The paper instantiates (4) -- the perfect-speedup assumption -- and uses
// lambda values from the Daley et al. characterization [24]:
// 0.203 for Resample, 0.260 for Combine.
#pragma once

#include <map>
#include <string>

#include "workflow/workflow.hpp"

namespace bbsim::model {

/// Paper constants: observed I/O time fractions for SWarp tasks [24].
inline constexpr double kPaperLambdaResample = 0.203;
inline constexpr double kPaperLambdaCombine = 0.260;

/// Amdahl's Law (Eq. (2)): execution time of sequential work `t_seq` on
/// `cores` cores with non-parallelisable fraction `alpha`.
double amdahl_time(double t_seq, int cores, double alpha);

/// Speedup factor t_seq / amdahl_time.
double amdahl_speedup(int cores, double alpha);

/// Eq. (1): compute-only time at p cores from the observed time.
double compute_time_from_observed(double observed_time, double lambda_io);

/// Eq. (3): calibrated sequential compute time, general alpha.
double sequential_compute_time(double observed_time, double lambda_io, int cores,
                               double alpha);

/// Eq. (4): calibrated sequential compute time under perfect speedup.
double sequential_compute_time_perfect(double observed_time, double lambda_io,
                                       int cores);

/// One task type's measured profile, as fed to the calibration.
struct TaskObservation {
  double observed_time = 0.0;  ///< T(p), seconds, including I/O
  int observed_cores = 1;      ///< p
  double lambda_io = 0.0;      ///< observed I/O fraction of T(p)
  double alpha = 0.0;          ///< Amdahl fraction assumed by the model
};

/// Rewrites every task's `flops` (and `alpha`) from observations keyed by
/// task type, using Eq. (3) (which reduces to Eq. (4) when alpha is 0) and
/// the reference core speed. Task types without an observation are left
/// untouched. Returns the number of tasks calibrated.
std::size_t calibrate_workflow(wf::Workflow& workflow,
                               const std::map<std::string, TaskObservation>& by_type,
                               double reference_core_speed);

}  // namespace bbsim::model
